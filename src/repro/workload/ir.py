"""The session IR: typed ops with think-time gaps.

A *workload* is the one representation of "a user session" shared by
the three consumers that used to encode it separately: the fleet's
seeded per-member scripts (``repro.fleet.population``), the harness's
day-in-the-life loop (``repro.harness.sessions``), and the differential
oracle's session player (``repro.oracle.session``).  Each op is a small
frozen value type; a :class:`Workload` is an immutable stream of them.

Two wire forms exist:

* **op tuples** — the compact ``("rotate",)`` / ``("wait", 512.3)``
  form the fleet generator has always produced.  ``to_tuples`` /
  ``from_tuples`` round-trip it losslessly, so pre-IR call sites (and
  the tests pinning the generator's exact output) keep working.
* **canonical JSON** — see ``repro.workload.codec``.

Both the tuple form and the dataclasses themselves pickle, so workloads
cross process-pool boundaries unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import ClassVar, Iterator

from repro.errors import WorkloadError

__all__ = [
    "Op",
    "Rotate",
    "Resize",
    "Locale",
    "Night",
    "Write",
    "StartAsync",
    "Kill",
    "Wait",
    "Audit",
    "Workload",
    "OP_KINDS",
    "CONFIG_CHANGE_KINDS",
    "op_from_tuple",
    "op_from_dict",
]

#: Op kinds that trigger a configuration change (and therefore a
#: migration / relaunch under the policy being driven).
CONFIG_CHANGE_KINDS = frozenset({"rotate", "resize", "locale", "night"})

#: kind -> Op subclass, filled by ``_op`` as classes are defined.
OP_KINDS: dict[str, type["Op"]] = {}


def _op(cls: type["Op"]) -> type["Op"]:
    OP_KINDS[cls.kind] = cls
    return cls


class Op:
    """Base class for session ops.  Subclasses are frozen dataclasses."""

    kind: ClassVar[str] = ""

    @property
    def is_config_change(self) -> bool:
        return self.kind in CONFIG_CHANGE_KINDS

    def to_tuple(self) -> tuple:
        """The compact op-tuple wire form (``("rotate",)`` style).

        Trailing None fields (optional slot targets) are omitted so the
        tuple form stays byte-compatible with the pre-IR generator
        (``("write", 3)``, not ``("write", 3, None)``).
        """
        values = [getattr(self, f.name) for f in fields(self)]  # type: ignore[arg-type]
        while values and values[-1] is None:
            values.pop()
        return (self.kind, *values)

    def to_dict(self) -> dict:
        """JSON-ready dict: ``{"op": kind, <field>: <value>, ...}``."""
        out: dict = {"op": self.kind}
        for f in fields(self):  # type: ignore[arg-type]
            out[f.name] = getattr(self, f.name)
        return out

    def describe(self) -> str:
        """One canonical text line (the ``workload show`` grammar)."""
        parts = [self.kind]
        for f in fields(self):  # type: ignore[arg-type]
            value = getattr(self, f.name)
            if value is None:
                continue
            if isinstance(value, bool):
                parts.append("on" if value else "off")
            else:
                parts.append(str(value))
        return " ".join(parts)


@_op
@dataclass(frozen=True, slots=True)
class Rotate(Op):
    """Rotate the device (portrait <-> landscape)."""

    kind: ClassVar[str] = "rotate"


@_op
@dataclass(frozen=True, slots=True)
class Resize(Op):
    """Resize the display (fold/unfold, split-screen, freeform drag)."""

    kind: ClassVar[str] = "resize"
    width: int = 0
    height: int = 0


@_op
@dataclass(frozen=True, slots=True)
class Locale(Op):
    """Switch the system locale."""

    kind: ClassVar[str] = "locale"
    locale: str = "en-US"


@_op
@dataclass(frozen=True, slots=True)
class Night(Op):
    """Toggle dark mode on or off."""

    kind: ClassVar[str] = "night"
    enabled: bool = False


@_op
@dataclass(frozen=True, slots=True)
class Write(Op):
    """Enter user state.

    ``step`` feeds the driver's value template (``m{member}.s{step}``
    for fleet devices, ``entry-{step}`` for harness sessions) and, when
    ``slot`` is None, picks the target slot as ``step % len(slots)``.
    """

    kind: ClassVar[str] = "write"
    step: int = 0
    slot: int | None = None


@_op
@dataclass(frozen=True, slots=True)
class StartAsync(Op):
    """Kick off the app's background task (if it declares one)."""

    kind: ClassVar[str] = "async"


@_op
@dataclass(frozen=True, slots=True)
class Kill(Op):
    """Kill the app process (low-memory kill / swipe from recents)."""

    kind: ClassVar[str] = "kill"


@_op
@dataclass(frozen=True, slots=True)
class Wait(Op):
    """Think time: advance simulated time by ``gap_ms``."""

    kind: ClassVar[str] = "wait"
    gap_ms: float = 0.0


@_op
@dataclass(frozen=True, slots=True)
class Audit(Op):
    """Read the app's slots back and compare against the last write.

    A mismatch is a *loss event* and the driver may re-enter the value
    (the harness user retyping a lost note).  ``slot`` narrows the audit
    to one slot index; None audits every slot.
    """

    kind: ClassVar[str] = "audit"
    slot: int | None = None


def op_from_tuple(raw: tuple) -> Op:
    """Decode one op tuple; raises :class:`WorkloadError` on bad input."""
    if not raw:
        raise WorkloadError("empty op tuple")
    kind = raw[0]
    cls = OP_KINDS.get(kind)
    if cls is None:
        known = ", ".join(sorted(OP_KINDS))
        raise WorkloadError(f"unknown op kind {kind!r} (known: {known})")
    names = [f.name for f in fields(cls)]  # type: ignore[arg-type]
    args = raw[1:]
    if len(args) > len(names):
        raise WorkloadError(
            f"op {kind!r} takes at most {len(names)} field(s), got {len(args)}"
        )
    try:
        return cls(*args)
    except TypeError as exc:
        raise WorkloadError(f"malformed {kind!r} op tuple {raw!r}: {exc}") from exc


def op_from_dict(data: dict) -> Op:
    """Decode one op dict (the JSON wire form)."""
    if not isinstance(data, dict) or "op" not in data:
        raise WorkloadError(f"op record must be a dict with an 'op' key, got {data!r}")
    kind = data["op"]
    cls = OP_KINDS.get(kind)
    if cls is None:
        known = ", ".join(sorted(OP_KINDS))
        raise WorkloadError(f"unknown op kind {kind!r} (known: {known})")
    names = {f.name for f in fields(cls)}  # type: ignore[arg-type]
    extra = set(data) - names - {"op"}
    if extra:
        raise WorkloadError(
            f"op {kind!r} has unknown field(s) {sorted(extra)!r} (known: {sorted(names)!r})"
        )
    try:
        return cls(**{name: data[name] for name in names if name in data})
    except TypeError as exc:
        raise WorkloadError(f"malformed {kind!r} op record {data!r}: {exc}") from exc


@dataclass(frozen=True)
class Workload:
    """An immutable typed op stream — one user session."""

    ops: tuple[Op, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "ops", tuple(self.ops))
        for op in self.ops:
            if not isinstance(op, Op):
                raise WorkloadError(f"workload ops must be Op instances, got {op!r}")

    def __iter__(self) -> Iterator[Op]:
        return iter(self.ops)

    def __len__(self) -> int:
        return len(self.ops)

    # -- summary ----------------------------------------------------

    def op_count(self) -> int:
        """Number of non-wait ops (the fleet's historical ``ops`` count)."""
        return sum(1 for op in self.ops if op.kind != "wait")

    def config_changes(self) -> int:
        return sum(1 for op in self.ops if op.is_config_change)

    def think_time_ms(self) -> float:
        return sum(op.gap_ms for op in self.ops if isinstance(op, Wait))

    # -- wire forms -------------------------------------------------

    def to_tuples(self) -> tuple[tuple, ...]:
        return tuple(op.to_tuple() for op in self.ops)

    @classmethod
    def from_tuples(cls, script) -> "Workload":
        return cls(tuple(op_from_tuple(tuple(raw)) for raw in script))

    def describe(self) -> str:
        """Canonical multi-line IR dump (one op per line)."""
        return "\n".join(op.describe() for op in self.ops)
