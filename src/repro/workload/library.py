"""Named workloads and phase plans (the CLI's vocabulary).

Two registries with disjoint name sets:

* :data:`WORKLOADS` — stationary :class:`PopulationSpec` distributions
  (``repro fleet --workload NAME``).
* :data:`PHASE_PLANS` — time-varying :class:`PhasePlan` programs
  (``repro fleet --phases NAME``).

``repro workload show NAME`` resolves across the union, so the names
must never collide; :func:`workload_named` / :func:`phase_plan_named`
raise :class:`WorkloadError` with a did-you-mean hint for unknown
names (the CLI turns that into its exit-2 discipline).
"""

from __future__ import annotations

import difflib

from repro.errors import WorkloadError
from repro.workload.generate import DEFAULT_POPULATION, PopulationSpec
from repro.workload.phases import (
    EVENT_KILL_CASCADE,
    EVENT_UPDATE_WAVE,
    FleetEvent,
    Phase,
    PhasePlan,
)

__all__ = [
    "STORM_POPULATION",
    "IDLE_POPULATION",
    "CHURN_POPULATION",
    "WORKLOADS",
    "PHASE_PLANS",
    "workload_named",
    "phase_plan_named",
]

#: The Fig. 11 regime: rapid-fire rotations and fold toggles with short
#: think times — the worst case for restart-based handling.
STORM_POPULATION = PopulationSpec(
    min_ops=16, max_ops=24,
    min_gap_ms=40.0, max_gap_ms=220.0,
    weights=(
        ("rotate", 10.0),
        ("fold", 3.0),
        ("write", 2.0),
        ("async", 1.0),
        ("night", 1.0),
    ),
)

#: A device left mostly alone: few ops, long gaps, almost no changes.
IDLE_POPULATION = PopulationSpec(
    min_ops=2, max_ops=5,
    min_gap_ms=2_000.0, max_gap_ms=8_000.0,
    weights=(
        ("write", 5.0),
        ("async", 2.0),
        ("rotate", 1.0),
        ("night", 1.0),
    ),
)

#: Locale/dark-mode churn: the non-geometry configuration dimensions.
CHURN_POPULATION = PopulationSpec(
    min_ops=10, max_ops=16,
    min_gap_ms=200.0, max_gap_ms=900.0,
    weights=(
        ("locale", 4.0),
        ("night", 3.0),
        ("fold", 3.0),
        ("rotate", 2.0),
        ("write", 2.0),
    ),
)

WORKLOADS: dict[str, PopulationSpec] = {
    "default": DEFAULT_POPULATION,
    "storm": STORM_POPULATION,
    "idle": IDLE_POPULATION,
    "config-churn": CHURN_POPULATION,
}

PHASE_PLANS: dict[str, PhasePlan] = {
    # A quiet day: two idle segments.  The comparator for the bench's
    # storm/idle cost-asymmetry gate.
    "calm": PhasePlan(
        "calm",
        phases=(
            Phase("overnight", IDLE_POPULATION),
            Phase("standby", IDLE_POPULATION),
        ),
    ),
    # Calm morning, then the Fig. 11 rotation storm.
    "rotation-storm": PhasePlan(
        "rotation-storm",
        phases=(
            Phase("calm", IDLE_POPULATION),
            Phase("storm", STORM_POPULATION),
        ),
    ),
    # Overnight idle -> active day -> evening settings churn.
    "diurnal": PhasePlan(
        "diurnal",
        phases=(
            Phase("night-idle", IDLE_POPULATION),
            Phase("day-active", DEFAULT_POPULATION),
            Phase("evening-churn", CHURN_POPULATION),
        ),
    ),
    # An OS update wave lands between two steady phases: every
    # participating device takes a forced config-change restart.
    "update-wave": PhasePlan(
        "update-wave",
        phases=(
            Phase("steady", DEFAULT_POPULATION),
            Phase("post-update", DEFAULT_POPULATION),
        ),
        events=(FleetEvent(EVENT_UPDATE_WAVE, phase=0, rate=1.0),),
    ),
    # Memory pressure kills 60% of the fleet mid-day.
    "kill-cascade": PhasePlan(
        "kill-cascade",
        phases=(
            Phase("steady", DEFAULT_POPULATION),
            Phase("aftermath", IDLE_POPULATION),
        ),
        events=(FleetEvent(EVENT_KILL_CASCADE, phase=0, rate=0.6),),
    ),
}

assert not set(WORKLOADS) & set(PHASE_PLANS), "registry names must be disjoint"


def _lookup(name: str, registry: dict, what: str, also: dict | None = None):
    if name in registry:
        return registry[name]
    pool = sorted(set(registry) | set(also or ()))
    hint = ""
    close = difflib.get_close_matches(name, pool, n=1)
    if close:
        hint = f" (did you mean {close[0]!r}?)"
    raise WorkloadError(
        f"unknown {what} {name!r}; known: {', '.join(pool)}{hint}"
    )


def workload_named(name: str) -> PopulationSpec:
    """Resolve a stationary workload name or raise with a hint."""
    return _lookup(name, WORKLOADS, "workload")


def phase_plan_named(name: str) -> PhasePlan:
    """Resolve a phase-plan name or raise with a hint."""
    return _lookup(name, PHASE_PLANS, "phase plan")
