"""Time-varying workloads: phases, storms, and correlated fleet events.

A :class:`PhasePlan` is the non-stationary generalisation of a single
:class:`~repro.workload.generate.PopulationSpec`: an ordered sequence
of named :class:`Phase` segments (each with its own op distribution —
an overnight idle phase draws few slow ops, a rotation storm draws
many fast ones) plus optional :class:`FleetEvent` records modelling
*correlated* fleet-wide incidents — an OS update wave that forces a
configuration change on participating devices, or a memory-pressure
kill cascade.  This is the Fig. 11 regime (frequent-change storms) at
population scale, per the ROADMAP's "time-varying, trace-driven
workloads" item.

Determinism contract: :func:`phased_workload` is **pure in
``(plan, seed, member)``**.  The phase stream and the event stream use
separate RNG forks, and every event costs a *fixed* number of draws
per member whether or not the member participates — so changing one
event's rate (or dropping an event) never reshuffles another event's
participation or the phase op stream.  This mirrors the fault plan's
fixed-draw discipline in ``repro.fleet.faults``.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass

from repro.errors import WorkloadError
from repro.sim.rng import DeterministicRng
from repro.workload.generate import (
    LOCALES,
    PopulationSpec,
    SessionState,
    draw_session_ops,
)
from repro.workload.ir import Kill, Locale, Op, Rotate, Wait, Workload

__all__ = [
    "EVENT_UPDATE_WAVE",
    "EVENT_KILL_CASCADE",
    "EVENT_KINDS",
    "Phase",
    "FleetEvent",
    "PhasePlan",
    "phased_workload",
]

#: An OS update wave: participating devices get a forced locale refresh
#: plus a configuration-change restart in quick succession.
EVENT_UPDATE_WAVE = "update-wave"
#: A memory-pressure cascade: participating devices lose their process.
EVENT_KILL_CASCADE = "kill-cascade"

EVENT_KINDS = (EVENT_UPDATE_WAVE, EVENT_KILL_CASCADE)


@dataclass(frozen=True)
class Phase:
    """One named segment of a plan, with its own op distribution."""

    name: str
    population: PopulationSpec

    def __post_init__(self) -> None:
        if not self.name:
            raise WorkloadError("Phase.name must be non-empty")
        if not isinstance(self.population, PopulationSpec):
            raise WorkloadError(
                f"Phase {self.name!r}: population must be a PopulationSpec, "
                f"got {type(self.population).__name__}"
            )


@dataclass(frozen=True)
class FleetEvent:
    """A correlated fleet-wide incident fired at the end of one phase.

    ``rate`` is the fraction of members that participate; participation
    is drawn per member from a dedicated RNG fork, so it is identical
    for member *i* across every (app, policy) cell — the event hits the
    *same devices* under every policy, which keeps fleet comparisons
    apples-to-apples.
    """

    kind: str
    phase: int
    rate: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            hint = ""
            close = difflib.get_close_matches(str(self.kind), EVENT_KINDS, n=1)
            if close:
                hint = f" (did you mean {close[0]!r}?)"
            raise WorkloadError(
                f"FleetEvent.kind {self.kind!r} unknown; "
                f"known: {', '.join(EVENT_KINDS)}{hint}"
            )
        if self.phase < 0:
            raise WorkloadError(
                f"FleetEvent.phase must be >= 0, got {self.phase}"
            )
        if not 0.0 < self.rate <= 1.0:
            raise WorkloadError(
                f"FleetEvent.rate must be in (0, 1], got {self.rate!r}"
            )


@dataclass(frozen=True)
class PhasePlan:
    """An ordered phase sequence plus correlated events."""

    name: str
    phases: tuple[Phase, ...]
    events: tuple[FleetEvent, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise WorkloadError("PhasePlan.name must be non-empty")
        if not self.phases:
            raise WorkloadError(
                f"PhasePlan {self.name!r}: phases must be non-empty"
            )
        for phase in self.phases:
            if not isinstance(phase, Phase):
                raise WorkloadError(
                    f"PhasePlan {self.name!r}: phases must be Phase "
                    f"instances, got {type(phase).__name__}"
                )
        for event in self.events:
            if not isinstance(event, FleetEvent):
                raise WorkloadError(
                    f"PhasePlan {self.name!r}: events must be FleetEvent "
                    f"instances, got {type(event).__name__}"
                )
            if event.phase >= len(self.phases):
                raise WorkloadError(
                    f"PhasePlan {self.name!r}: event {event.kind!r} fires "
                    f"after phase {event.phase}, but the plan has only "
                    f"{len(self.phases)} phase(s)"
                )

    def describe(self) -> str:
        lines = [f"plan {self.name}: {len(self.phases)} phase(s), "
                 f"{len(self.events)} event(s)"]
        for index, phase in enumerate(self.phases):
            pop = phase.population
            lines.append(
                f"  phase {index} {phase.name}: {pop.min_ops}-{pop.max_ops} "
                f"ops, gaps {pop.min_gap_ms:g}-{pop.max_gap_ms:g} ms"
            )
        for event in self.events:
            lines.append(
                f"  event {event.kind} after phase {event.phase} "
                f"(rate {event.rate:g})"
            )
        return "\n".join(lines)


def _event_ops(event: FleetEvent, locale_index: int, state: SessionState) -> list[Op]:
    if event.kind == EVENT_UPDATE_WAVE:
        # The update applies, refreshes locale resources, and forces a
        # configuration-change restart shortly after.
        state.saw_config_change = True
        return [
            Locale(LOCALES[locale_index]),
            Wait(200.0),
            Rotate(),
            Wait(400.0),
        ]
    # kill cascade: the OS reclaims the process under memory pressure.
    return [Kill(), Wait(250.0)]


def phased_workload(plan: PhasePlan, seed: int, member: int) -> Workload:
    """Member ``member``'s session under ``plan`` — pure in (seed, member)."""
    rng = DeterministicRng(seed).fork(f"fleet-phased-{member}")
    event_rng = DeterministicRng(seed).fork(f"fleet-events-{member}")
    # Fixed draws: two per event, unconditionally, in declaration order.
    draws = []
    for event in plan.events:
        joined = event_rng.uniform(0.0, 1.0) <= event.rate
        locale_index = event_rng.randint(0, len(LOCALES) - 1)
        draws.append((joined, locale_index))

    state = SessionState()
    ops: list[Op] = []
    for index, phase in enumerate(plan.phases):
        count = rng.randint(phase.population.min_ops,
                            phase.population.max_ops)
        draw_session_ops(rng, phase.population, state, ops, count)
        for event, (joined, locale_index) in zip(plan.events, draws):
            if event.phase != index or not joined:
                continue
            ops.extend(_event_ops(event, locale_index, state))
    if not state.saw_config_change:
        ops.append(Rotate())
        ops.append(Wait(500.0))
    return Workload(tuple(ops))
