"""Trace -> workload compilation: replay what a real session recorded.

``from_trace(spans)`` maps a recorded span stream (PR 1's tracer — the
output of ``repro.trace.replay.snapshot`` or a loaded export) back to
IR ops, so one real recorded session can be amplified into a
fleet-scale population (``repro fleet --workload recorded.json``).
This is the XTrace direction from PAPERS.md: derive production
workloads from production traces.

The compiler keys on the spans the simulator's own hooks emit:

* ``update-configuration`` (ATMS) — its ``change`` arg lists the
  changed configuration dimensions; the highest-priority dimension
  picks the op (orientation -> :class:`Rotate`, screenSize ->
  :class:`Resize` fold toggle, locale -> :class:`Locale` over the
  standard cycle, uiMode -> :class:`Night` toggle).
* ``process-kill`` (process) — a :class:`Kill`.

Everything else (launches, lifecycle, looper, scheduler spans) is
machinery *caused by* the user ops, not a user op itself, and is
skipped.  The think time between consecutive compiled ops is preserved
as :class:`Wait` gaps, so the replayed session keeps the recorded
cadence; a trailing settle wait lets the last change finish handling.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.errors import WorkloadError
from repro.trace.span import Span
from repro.workload.generate import FOLDED_SIZE, LOCALES, UNFOLDED_SIZE
from repro.workload.ir import (
    Kill,
    Locale,
    Night,
    Op,
    Resize,
    Rotate,
    Wait,
    Workload,
)

__all__ = ["from_trace", "TRAILING_SETTLE_MS"]

#: Settle wait appended after the last compiled op.
TRAILING_SETTLE_MS = 500.0


def _as_span_fields(record) -> tuple[str, str, float, dict]:
    """(name, category, start_ms, args) from a Span or an exported dict."""
    if isinstance(record, Span):
        return record.name, record.category, record.start_ms, dict(record.args)
    if isinstance(record, Mapping):
        try:
            return (
                record["name"],
                record["category"],
                float(record["start_ms"]),
                dict(record.get("args") or {}),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise WorkloadError(
                f"malformed span record {record!r}: {exc}"
            ) from exc
    raise WorkloadError(
        f"span records must be Span objects or dicts, got {type(record).__name__}"
    )


def from_trace(spans: Iterable) -> Workload:
    """Compile a recorded span stream into a replayable workload."""
    events: list[tuple[float, Op]] = []
    folded = False
    night = False
    locale_index = 0
    for record in spans:
        name, category, start_ms, args = _as_span_fields(record)
        if category == "atms" and name == "update-configuration":
            dims = {d for d in str(args.get("change", "")).split(",") if d}
            if "orientation" in dims:
                events.append((start_ms, Rotate()))
            elif "screenSize" in dims:
                folded = not folded
                width, height = FOLDED_SIZE if folded else UNFOLDED_SIZE
                events.append((start_ms, Resize(width, height)))
            elif "locale" in dims:
                locale_index = (locale_index + 1) % len(LOCALES)
                events.append((start_ms, Locale(LOCALES[locale_index])))
            elif "uiMode" in dims:
                night = not night
                events.append((start_ms, Night(night)))
            # keyboard / fontScale-only changes have no IR op yet.
        elif category == "process" and name == "process-kill":
            events.append((start_ms, Kill()))

    events.sort(key=lambda pair: pair[0])
    ops: list[Op] = []
    previous_ms: float | None = None
    for start_ms, op in events:
        if previous_ms is not None:
            gap = round(start_ms - previous_ms, 1)
            if gap > 0:
                ops.append(Wait(gap))
        ops.append(op)
        previous_ms = start_ms
    if ops:
        ops.append(Wait(TRAILING_SETTLE_MS))
    return Workload(tuple(ops))
