"""Unit tests for the Activity class."""

import pytest

from repro import Android10Policy, AndroidSystem
from repro.android.app.lifecycle import LifecycleState
from repro.apps import make_benchmark_app
from repro.apps.benchmark import BUTTON_ID, IMAGE_ID_BASE
from repro.errors import NullPointerException, WindowLeakedException


def launch():
    system = AndroidSystem(policy=Android10Policy())
    app = make_benchmark_app(2)
    record = system.launch(app)
    return system, app, record.instance


class TestLaunch:
    def test_launch_reaches_resumed(self):
        _, _, activity = launch()
        assert activity.lifecycle is LifecycleState.RESUMED

    def test_view_tree_built_from_layout(self):
        _, _, activity = launch()
        assert activity.find_view(BUTTON_ID) is not None
        assert activity.find_view(IMAGE_ID_BASE) is not None
        # decor + container + button + 2 images
        assert activity.decor.count_views() == 5

    def test_launch_registers_memory(self):
        system, app, _ = launch()
        assert system.memory_of(app.package) > system.ctx.costs.process_base_mb

    def test_instance_ids_are_unique_within_a_system(self):
        system, app, a = launch()
        record = system.atms.stack.find_task(app.package).top()
        thread = system.atms.thread_of(app.package)
        b = thread.perform_launch_activity(record, None)
        assert a.instance_id != b.instance_id

    def test_instance_ids_are_deterministic_across_systems(self):
        """Per-context counters: identical runs allocate identical ids."""
        _, _, a = launch()
        _, _, b = launch()
        assert a.instance_id == b.instance_id


class TestDestroy:
    def test_destroy_tombstones_views_and_frees_memory(self):
        system, app, activity = launch()
        before = system.memory_of(app.package)
        view = activity.require_view(BUTTON_ID)
        activity.perform_pause()
        activity.perform_stop()
        activity.perform_destroy()
        assert activity.destroyed
        assert not view.alive
        assert system.memory_of(app.package) < before

    def test_find_view_on_destroyed_activity_returns_tombstone(self):
        _, _, activity = launch()
        activity.perform_pause()
        activity.perform_stop()
        activity.perform_destroy()
        stale = activity.find_view(BUTTON_ID)
        assert stale is not None
        with pytest.raises(NullPointerException):
            stale.set_attr("text", "boom")

    def test_dialog_on_destroyed_activity_is_window_leak(self):
        _, _, activity = launch()
        activity.perform_pause()
        activity.perform_stop()
        activity.perform_destroy()
        with pytest.raises(WindowLeakedException):
            activity.show_dialog("progress")

    def test_dialog_on_live_activity_attaches(self):
        _, _, activity = launch()
        activity.show_dialog("progress")
        assert activity.dialogs == ["progress"]


class TestSaveInstanceState:
    def test_stock_save_covers_only_auto_saved(self):
        _, _, activity = launch()
        activity.require_view(IMAGE_ID_BASE).set_attr("drawable", "user")
        bundle = activity.save_instance_state(full=False)
        assert bundle.get_bundle(f"view:{IMAGE_ID_BASE}") is None

    def test_full_save_covers_everything(self):
        _, _, activity = launch()
        activity.require_view(IMAGE_ID_BASE).set_attr("drawable", "user")
        bundle = activity.save_instance_state(full=True)
        assert (
            bundle.get_bundle(f"view:{IMAGE_ID_BASE}").get("drawable")
            == "user"
        )

    def test_require_view_raises_for_unknown_id(self):
        _, _, activity = launch()
        with pytest.raises(NullPointerException):
            activity.require_view(424242)


class TestRCHDroidSurface:
    def test_get_all_sunny_views_is_id_keyed(self):
        _, _, activity = launch()
        table = activity.get_all_sunny_views()
        assert BUTTON_ID in table
        assert table[BUTTON_ID].view_id == BUTTON_ID

    def test_set_sunny_views_plants_bidirectional_peers(self):
        _, _, a = launch()
        _, _, b = launch()
        mapped = a.set_sunny_views(b.get_all_sunny_views())
        assert mapped == 4  # container + button + 2 images
        shadow_button = a.find_view(BUTTON_ID)
        sunny_button = b.find_view(BUTTON_ID)
        assert shadow_button.sunny_peer is sunny_button
        assert sunny_button.sunny_peer is shadow_button

    def test_enter_shadow_sets_flags_and_timestamps(self):
        system, _, activity = launch()
        activity.enter_shadow()
        assert activity.lifecycle is LifecycleState.SHADOW
        assert activity.shadow_flag and not activity.sunny_flag
        assert activity.shadow_entered_at_ms == system.now_ms
        assert all(v.shadow_state for v in activity.decor.iter_tree())

    def test_enter_sunny_clears_shadow_flags(self):
        _, _, activity = launch()
        activity.enter_shadow()
        activity.enter_sunny()
        assert activity.lifecycle is LifecycleState.SUNNY
        assert activity.sunny_flag and not activity.shadow_flag
        assert activity.shadow_entered_at_ms is None
        assert all(v.sunny_state for v in activity.decor.iter_tree())
