"""Unit tests for ActivityThread (launch, relaunch, shadow bookkeeping)."""

import pytest

from repro import Android10Policy, AndroidSystem
from repro.android.app.lifecycle import LifecycleState
from repro.apps import make_benchmark_app
from repro.apps.benchmark import IMAGE_ID_BASE


def launch():
    system = AndroidSystem(policy=Android10Policy())
    app = make_benchmark_app(2)
    record = system.launch(app)
    thread = system.atms.thread_of(app.package)
    return system, app, record, thread


class TestLaunch:
    def test_launch_links_record_and_instance(self):
        _, _, record, thread = launch()
        assert record.instance in thread.activities
        assert record.instance.token == record.token

    def test_saved_state_is_deep_copied(self):
        system, _, record, thread = launch()
        old = record.instance
        old.require_view(IMAGE_ID_BASE).set_attr("drawable", "user")
        bundle = old.save_instance_state(full=True)
        new = thread.perform_launch_activity(record, bundle)
        # mutating the new tree must not write back into the bundle
        new.require_view(IMAGE_ID_BASE).set_attr("drawable", "other")
        assert (
            bundle.get_bundle(f"view:{IMAGE_ID_BASE}").get("drawable")
            == "user"
        )


class TestRelaunch:
    def test_relaunch_destroys_old_and_resumes_new(self):
        system, _, record, thread = launch()
        old = record.instance
        new = thread.handle_relaunch_activity(record, system.atms.config.rotated())
        assert old.destroyed
        assert old not in thread.activities
        assert new.lifecycle is LifecycleState.RESUMED
        assert record.instance is new

    def test_relaunch_applies_new_config(self):
        system, _, record, thread = launch()
        new_config = system.atms.config.rotated()
        new = thread.handle_relaunch_activity(record, new_config)
        assert new.config == new_config
        assert record.config == new_config


class TestShadowBookkeeping:
    def test_note_shadow_entry_tracks_pointer_and_times(self):
        system, _, record, thread = launch()
        activity = record.instance
        activity.enter_shadow()
        thread.note_shadow_entry(activity)
        assert thread.shadow_activity is activity
        assert thread.shadow_frequency(60_000.0) == 1
        assert thread.shadow_time_ms() == pytest.approx(0.0)

    def test_shadow_frequency_window_expires(self):
        system, _, record, thread = launch()
        activity = record.instance
        activity.enter_shadow()
        thread.note_shadow_entry(activity)
        system.run_for(61_000.0)
        assert thread.shadow_frequency(60_000.0) == 0

    def test_shadow_time_grows(self):
        system, _, record, thread = launch()
        activity = record.instance
        activity.enter_shadow()
        thread.note_shadow_entry(activity)
        system.run_for(5_000.0)
        assert thread.shadow_time_ms() == pytest.approx(5_000.0)

    def test_shadow_time_none_without_shadow(self):
        _, _, _, thread = launch()
        assert thread.shadow_time_ms() is None

    def test_release_shadow_destroys_instance(self):
        system, app, record, thread = launch()
        activity = record.instance
        activity.enter_shadow()
        thread.note_shadow_entry(activity)
        before = system.memory_of(app.package)
        thread.release_shadow("test")
        assert thread.shadow_activity is None
        assert activity.destroyed
        assert activity not in thread.activities
        assert system.memory_of(app.package) < before

    def test_release_without_shadow_is_noop(self):
        _, _, _, thread = launch()
        thread.release_shadow("test")  # must not raise

    def test_foreground_activity_query(self):
        _, _, record, thread = launch()
        assert thread.foreground_activity() is record.instance
        record.instance.perform_pause()
        assert thread.foreground_activity() is None
