"""Unit tests for async-task worker CPU accounting."""

import pytest

from repro import AndroidSystem, RCHDroidPolicy
from repro.android.os import Process
from repro.android.runtime import AsyncTask, Looper
from repro.apps import make_benchmark_app
from repro.metrics.profiler import Profiler
from repro.sim.context import SimContext


def test_default_tasks_record_no_worker_compute():
    ctx = SimContext()
    looper = Looper(ctx, Process(ctx, "app", 32.0))
    AsyncTask(ctx, looper, 5_000.0, lambda: None).execute()
    ctx.run_until_idle()
    worker = [i for i in ctx.recorder.busy
              if i.thread == "worker" and i.label.startswith("async-compute")]
    assert worker == []


def test_cpu_fraction_spreads_over_task_lifetime():
    ctx = SimContext()
    looper = Looper(ctx, Process(ctx, "app", 32.0))
    AsyncTask(ctx, looper, 10_000.0, lambda: None,
              cpu_fraction=0.2).execute()
    ctx.run_until_idle()
    profiler = Profiler(ctx.recorder)
    series = profiler.cpu_series("app", 0.0, 10_000.0, 1_000.0)
    # every 1 s window during the task shows ~20% utilisation
    for _, pct in series:
        assert pct == pytest.approx(20.0, abs=0.5)


def test_cancelled_task_records_no_compute():
    ctx = SimContext()
    looper = Looper(ctx, Process(ctx, "app", 32.0))
    task = AsyncTask(ctx, looper, 10_000.0, lambda: None,
                     cpu_fraction=0.2).execute()
    task.cancel()
    ctx.run_until_idle()
    assert not any(i.thread == "worker" and "compute" in i.label
                   for i in ctx.recorder.busy)


def test_partial_final_chunk():
    ctx = SimContext()
    looper = Looper(ctx, Process(ctx, "app", 32.0))
    AsyncTask(ctx, looper, 2_500.0, lambda: None,
              cpu_fraction=0.4).execute()
    ctx.run_until_idle()
    compute = [i for i in ctx.recorder.busy if "compute" in i.label]
    assert len(compute) == 3  # 1000 + 1000 + 500 ms chunks
    assert compute[-1].duration_ms == pytest.approx(0.4 * 500.0)


def test_benchmark_app_fraction_flows_through_system():
    system = AndroidSystem(policy=RCHDroidPolicy())
    app = make_benchmark_app(2, async_duration_ms=3_000.0,
                             async_cpu_fraction=0.1)
    system.launch(app)
    system.start_async(app)
    system.run_until_idle()
    compute_ms = sum(
        i.duration_ms for i in system.ctx.recorder.busy
        if "async-compute" in i.label
    )
    assert compute_ms == pytest.approx(300.0, rel=0.01)
