"""Unit tests for the ATMS (launch, config updates, app switching)."""

import pytest

from repro import Android10Policy, AndroidSystem, RCHDroidPolicy
from repro.apps import make_benchmark_app


def test_launch_creates_process_thread_task_record():
    system = AndroidSystem(policy=Android10Policy())
    app = make_benchmark_app(1)
    record = system.launch(app)
    assert app.package in system.atms.threads
    assert record.task in system.atms.stack.tasks
    assert record.instance_alive


def test_update_configuration_without_foreground_is_noop():
    system = AndroidSystem(policy=Android10Policy())
    assert system.rotate() is None
    assert system.handling_times() == []


def test_update_configuration_for_dead_process_is_noop():
    system = AndroidSystem(policy=Android10Policy())
    app = make_benchmark_app(1)
    system.launch(app)
    system.start_async(app)
    system.rotate()
    system.run_until_idle()  # crash: async hits destroyed views
    assert system.crashed(app.package)
    episodes_before = len(system.handling_times())
    assert system.rotate() is None
    assert len(system.handling_times()) == episodes_before


def test_crashed_process_task_is_removed_from_stack():
    system = AndroidSystem(policy=Android10Policy())
    app = make_benchmark_app(1)
    system.launch(app)
    system.start_async(app)
    system.rotate()
    system.run_until_idle()
    assert system.atms.stack.find_task(app.package) is None


def test_identical_configuration_is_filtered():
    system = AndroidSystem(policy=Android10Policy())
    app = make_benchmark_app(1)
    system.launch(app)
    assert system.atms.update_configuration(system.atms.config) == "none"


def test_handling_latency_recorded_with_package_and_path():
    system = AndroidSystem(policy=Android10Policy())
    app = make_benchmark_app(1)
    system.launch(app)
    system.rotate()
    record = system.ctx.recorder.latencies_named("handling")[0]
    assert record.detail == f"{app.package}|relaunch"
    assert record.duration_ms > 0


def test_config_change_targets_foreground_app_only():
    system = AndroidSystem(policy=Android10Policy())
    back = make_benchmark_app(1, package="bench.back")
    front = make_benchmark_app(1, package="bench.front")
    system.launch(back)
    back_instance = system.foreground_activity(back.package)
    system.launch(front)
    system.rotate()
    episodes = system.ctx.recorder.latencies_named("handling")
    assert all(e.detail.startswith("bench.front|") for e in episodes)
    # The background app was not restarted (stock keeps it stopped).
    assert not back_instance.destroyed


def test_switch_to_brings_task_to_front():
    system = AndroidSystem(policy=Android10Policy())
    one = make_benchmark_app(1, package="bench.one")
    two = make_benchmark_app(1, package="bench.two")
    system.launch(one)
    system.launch(two)
    record = system.atms.switch_to("bench.one")
    assert record is not None
    assert system.atms.foreground_record() is record


def test_switch_to_unknown_package_returns_none():
    system = AndroidSystem(policy=Android10Policy())
    assert system.atms.switch_to("missing") is None


def test_rchdroid_shadow_released_on_switch_via_atms():
    system = AndroidSystem(policy=RCHDroidPolicy())
    one = make_benchmark_app(2, package="bench.one")
    two = make_benchmark_app(2, package="bench.two")
    system.launch(one)
    system.rotate()
    thread = system.atms.thread_of("bench.one")
    assert thread.shadow_activity is not None
    system.launch(two)
    assert thread.shadow_activity is None
