"""Edge-case tests across the framework layers."""

import pytest

from repro import Android10Policy, AndroidSystem, RCHDroidPolicy
from repro.android.app.intent import Intent, IntentFlag
from repro.apps import make_benchmark_app
from repro.errors import WrongThreadError


class TestViewOnDeadProcess:
    def test_mutation_on_dead_process_is_a_simulator_error(self):
        """Touching a live view of a dead process is a harness scripting
        bug (real code could never run there) -> loud WrongThreadError,
        not a silent app crash."""
        system = AndroidSystem(policy=RCHDroidPolicy())
        app = make_benchmark_app(1)
        system.launch(app)
        activity = system.foreground_activity(app.package)
        view = activity.require_view(10)
        activity.process.kill()
        with pytest.raises(WrongThreadError):
            view.set_attr("text", "zombie")


class TestStarterFlags:
    def test_new_task_flag_bypasses_dedup(self):
        system = AndroidSystem(policy=Android10Policy())
        app = make_benchmark_app(1)
        record = system.launch(app)
        task = record.task
        result = system.atms.starter.start_activity_unchecked(
            Intent(app, flags=IntentFlag.NEW_TASK), task, system.atms.config
        )
        assert result.created
        assert len(task.records) == 2


class TestConfigChangeDuringAsyncOnRchdroid:
    def test_three_changes_during_one_task(self):
        """The task's target flips between shadow/sunny roles repeatedly;
        the final state must still show the update with no crash."""
        system = AndroidSystem(policy=RCHDroidPolicy())
        app = make_benchmark_app(2, async_duration_ms=10_000.0)
        system.launch(app)
        system.start_async(app)
        system.rotate()
        system.run_for(1_000)
        system.rotate()
        system.run_for(1_000)
        system.rotate()
        system.run_until_idle()
        assert not system.crashed(app.package)
        foreground = system.foreground_activity(app.package)
        from repro.apps.benchmark import IMAGE_ID_BASE

        assert (
            foreground.require_view(IMAGE_ID_BASE).get_attr("drawable")
            == f"loaded-{IMAGE_ID_BASE}"
        )


class TestRepeatedIdenticalUpdates:
    def test_noop_config_updates_do_not_accumulate_state(self):
        system = AndroidSystem(policy=RCHDroidPolicy())
        app = make_benchmark_app(1)
        system.launch(app)
        for _ in range(5):
            assert system.atms.update_configuration(system.atms.config) == "none"
        assert system.handling_times() == []
        thread = system.atms.thread_of(app.package)
        assert thread.shadow_activity is None


class TestZeroViewApp:
    def test_app_with_empty_layout_survives_rotation(self):
        from repro.android.views.inflate import LayoutSpec
        from repro.android.res import Orientation, ResourceTable
        from repro.apps.dsl import AppSpec

        table = ResourceTable()
        for orientation in (Orientation.PORTRAIT, Orientation.LANDSCAPE):
            table.add_layout("main", LayoutSpec("main", roots=[]), orientation)
        app = AppSpec(package="empty.layout", label="e", resources=table)
        system = AndroidSystem(policy=RCHDroidPolicy())
        system.launch(app)
        assert system.rotate() == "init"
        assert system.rotate() == "flip"
        assert not system.crashed(app.package)
