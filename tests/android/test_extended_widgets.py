"""Unit tests for the extended widget set (policy inheritance)."""

import pytest

from repro import AndroidSystem, RCHDroidPolicy
from repro.android.views.inflate import ViewSpec
from repro.android.views.widgets import (
    AbsListView,
    CheckBox,
    ProgressBar,
    RadioButton,
    RatingBar,
    Spinner,
    Switch,
    ToggleButton,
)
from repro.apps.dsl import AppSpec, two_orientation_resources


class TestPolicyInheritance:
    @pytest.mark.parametrize("widget", [Switch, ToggleButton, RadioButton])
    def test_compound_buttons_inherit_checkbox_policy(self, widget):
        assert widget.MIGRATED_ATTRS == CheckBox.MIGRATED_ATTRS

    def test_spinner_inherits_abslistview_policy(self):
        assert Spinner.MIGRATED_ATTRS == AbsListView.MIGRATED_ATTRS

    def test_ratingbar_inherits_progressbar_policy(self):
        assert RatingBar.MIGRATED_ATTRS == ProgressBar.MIGRATED_ATTRS


class TestBehaviour:
    def test_spinner_selection(self):
        from repro.sim.context import SimContext

        spinner = Spinner(SimContext(), view_id=1)
        spinner.select(4)
        assert spinner.selection == 4


@pytest.mark.parametrize(
    "widget,attr,value",
    [
        ("Switch", "checked", True),
        ("ToggleButton", "checked", True),
        ("RadioButton", "checked", True),
        ("Spinner", "selector_position", 3),
        ("RatingBar", "progress", 4),
    ],
)
def test_extended_widget_state_survives_rotation_under_rchdroid(
    widget, attr, value
):
    """The Orbot-style bug (Fig. 13(d)): a selection widget's state
    survives the change under RCHDroid via the inherited policy."""
    from repro.apps.dsl import StateSlot, StorageKind

    app = AppSpec(
        package=f"ext.{widget.lower()}", label=widget,
        resources=two_orientation_resources(
            "main", [ViewSpec(widget, view_id=10)]
        ),
        slots=(StateSlot("s", StorageKind.VIEW_ATTR, view_id=10, attr=attr),),
    )
    system = AndroidSystem(policy=RCHDroidPolicy())
    system.launch(app)
    system.write_slot(app, "s", value)
    system.rotate()
    assert system.read_slot(app, "s") == value
    system.rotate()
    assert system.read_slot(app, "s") == value


def test_extended_widget_state_lost_on_stock():
    from repro import Android10Policy
    from repro.apps.dsl import StateSlot, StorageKind

    app = AppSpec(
        package="ext.stock", label="s",
        resources=two_orientation_resources(
            "main", [ViewSpec("Switch", view_id=10)]
        ),
        slots=(StateSlot("s", StorageKind.VIEW_ATTR,
                         view_id=10, attr="checked"),),
    )
    system = AndroidSystem(policy=Android10Policy())
    system.launch(app)
    system.write_slot(app, "s", True)
    system.rotate()
    assert system.read_slot(app, "s") is not True
