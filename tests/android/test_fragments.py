"""Unit + integration tests for fragments (the Section 2.2 hard case)."""

import pytest

from repro import Android10Policy, AndroidSystem, RCHDroidPolicy, \
    RuntimeDroidPolicy
from repro.android.res import Orientation, ResourceTable
from repro.android.views.inflate import LayoutSpec, ViewSpec
from repro.apps.dsl import AppSpec, simple_layout
from repro.errors import NullPointerException

CONTAINER_ID = 5
FRAG_ROOT_ID = 50
FRAG_TEXT_ID = 51


def fragment_app(runtimedroid_compatible: bool = False) -> AppSpec:
    table = ResourceTable()
    main = simple_layout(
        "main",
        [ViewSpec("ViewGroup", view_id=CONTAINER_ID),
         ViewSpec("TextView", view_id=20)],
    )
    detail = LayoutSpec(
        "detail",
        roots=[ViewSpec(
            "ViewGroup", view_id=FRAG_ROOT_ID,
            children=[ViewSpec("TextView", view_id=FRAG_TEXT_ID)],
        )],
    )
    for orientation in (Orientation.PORTRAIT, Orientation.LANDSCAPE):
        table.add_layout("main", main, orientation)
        table.add_layout("detail", detail, orientation)
    return AppSpec(
        package="frag.app", label="FragmentApp", resources=table,
        runtimedroid_compatible=runtimedroid_compatible,
    )


def launch(policy_factory=RCHDroidPolicy):
    system = AndroidSystem(policy=policy_factory())
    app = fragment_app()
    system.launch(app)
    return system, app, system.foreground_activity(app.package)


class TestFragmentManager:
    def test_attach_inflates_subtree_into_container(self):
        _, _, activity = launch()
        activity.fragments.attach("detail", "detail", CONTAINER_ID)
        assert activity.find_view(FRAG_TEXT_ID) is not None
        container = activity.require_view(CONTAINER_ID)
        assert any(c.view_id == FRAG_ROOT_ID for c in container.children)

    def test_attach_charges_inflation_cost(self):
        system, _, activity = launch()
        before = system.now_ms
        activity.fragments.attach("detail", "detail", CONTAINER_ID)
        assert system.now_ms > before

    def test_double_attach_rejected(self):
        _, _, activity = launch()
        activity.fragments.attach("detail", "detail", CONTAINER_ID)
        with pytest.raises(ValueError):
            activity.fragments.attach("detail", "detail", CONTAINER_ID)

    def test_attach_to_non_group_rejected(self):
        _, _, activity = launch()
        with pytest.raises(TypeError):
            activity.fragments.attach("detail", "detail", 20)

    def test_detach_destroys_subtree(self):
        _, _, activity = launch()
        activity.fragments.attach("detail", "detail", CONTAINER_ID)
        text = activity.require_view(FRAG_TEXT_ID)
        activity.fragments.detach("detail")
        assert activity.find_view(FRAG_TEXT_ID) is None
        assert not text.alive
        assert activity.fragments.attached == []

    def test_detach_unattached_raises(self):
        _, _, activity = launch()
        with pytest.raises(NullPointerException):
            activity.fragments.detach("missing")


class TestFragmentAcrossRuntimeChange:
    def test_rchdroid_reattaches_fragment_and_restores_its_state(self):
        system, app, activity = launch()
        activity.fragments.attach("detail", "detail", CONTAINER_ID)
        activity.require_view(FRAG_TEXT_ID).set_attr("text", "inside-frag")
        assert system.rotate() == "init"
        fresh = system.foreground_activity(app.package)
        assert fresh is not activity
        assert fresh.fragments.find("detail") is not None
        assert fresh.require_view(FRAG_TEXT_ID).get_attr("text") == "inside-frag"

    def test_stock_restores_structure_but_loses_fragment_view_state(self):
        system, app, activity = launch(Android10Policy)
        activity.fragments.attach("detail", "detail", CONTAINER_ID)
        activity.require_view(FRAG_TEXT_ID).set_attr("text", "inside-frag")
        system.rotate()
        fresh = system.foreground_activity(app.package)
        assert fresh.fragments.find("detail") is not None  # structure kept
        assert fresh.require_view(FRAG_TEXT_ID).get_attr("text") != "inside-frag"

    def test_fragment_views_participate_in_lazy_migration(self):
        from repro.apps.dsl import AsyncScript

        system, app, activity = launch()
        activity.fragments.attach("detail", "detail", CONTAINER_ID)
        script = AsyncScript("bg", 2_000.0,
                             ((FRAG_TEXT_ID, "text", "late-update"),))
        system.start_async(app, script)
        system.rotate()
        system.run_until_idle()
        fresh = system.foreground_activity(app.package)
        assert fresh.require_view(FRAG_TEXT_ID).get_attr("text") == "late-update"

    def test_flip_keeps_fragment_alive_on_revived_instance(self):
        system, app, activity = launch()
        activity.fragments.attach("detail", "detail", CONTAINER_ID)
        system.rotate()
        system.rotate()  # flip back to the original instance
        revived = system.foreground_activity(app.package)
        assert revived is activity
        assert revived.find_view(FRAG_TEXT_ID) is not None

    def test_runtimedroid_falls_back_to_restart_on_fragment_apps(self):
        """Section 2.2: the static patch cannot handle dynamic trees, so
        fragment-heavy apps ship unpatched and restart as stock."""
        system = AndroidSystem(policy=RuntimeDroidPolicy())
        app = fragment_app(runtimedroid_compatible=False)
        system.launch(app)
        old = system.foreground_activity(app.package)
        old.fragments.attach("detail", "detail", CONTAINER_ID)
        old.require_view(FRAG_TEXT_ID).set_attr("text", "inside-frag")
        assert system.rotate() == "relaunch"
        fresh = system.foreground_activity(app.package)
        assert fresh.require_view(FRAG_TEXT_ID).get_attr("text") != "inside-frag"
