"""Unit tests for layout specs and the inflater."""

import pytest

from repro import AndroidSystem
from repro.android.views.inflate import LayoutSpec, ViewSpec, inflate
from repro.android.views.view import DecorView
from repro.apps import make_benchmark_app
from repro.apps.dsl import simple_layout


def launch_activity():
    system = AndroidSystem()
    app = make_benchmark_app(1)
    record = system.launch(app)
    return system, record.instance


class TestViewSpec:
    def test_count_is_recursive(self):
        spec = ViewSpec(
            "ViewGroup", 1,
            children=[ViewSpec("TextView", 2), ViewSpec("TextView", 3)],
        )
        assert spec.count() == 3

    def test_layout_count_includes_decor(self):
        layout = simple_layout("main", [ViewSpec("TextView", 2)])
        assert layout.count_views() == 3  # decor + container + text


class TestInflate:
    def test_builds_tree_with_ids_and_attrs(self):
        system, activity = launch_activity()
        layout = simple_layout(
            "t", [ViewSpec("TextView", 7, attrs={"text": "seed"})]
        )
        decor = inflate(system.ctx, activity, layout)
        assert isinstance(decor, DecorView)
        view = decor.find_by_id(7)
        assert view is not None
        assert view.get_attr("text") == "seed"

    def test_unknown_view_type_raises(self):
        system, activity = launch_activity()
        layout = simple_layout("t", [ViewSpec("Nonsense", 7)])
        with pytest.raises(KeyError, match="Nonsense"):
            inflate(system.ctx, activity, layout)

    def test_children_under_non_group_raises(self):
        system, activity = launch_activity()
        layout = LayoutSpec(
            "t",
            roots=[ViewSpec("TextView", 1, children=[ViewSpec("TextView", 2)])],
        )
        with pytest.raises(TypeError):
            inflate(system.ctx, activity, layout)

    def test_inflation_cost_scales_with_views(self):
        system, activity = launch_activity()
        small = simple_layout("s", [ViewSpec("TextView", 1)])
        big = simple_layout(
            "b", [ViewSpec("TextView", i) for i in range(1, 21)]
        )
        t0 = system.ctx.now_ms
        inflate(system.ctx, activity, small)
        small_cost = system.ctx.now_ms - t0
        t1 = system.ctx.now_ms
        inflate(system.ctx, activity, big)
        big_cost = system.ctx.now_ms - t1
        assert big_cost > small_cost

    def test_inflated_views_register_memory(self):
        system, activity = launch_activity()
        before = system.memory_of(activity.process.name)
        layout = simple_layout(
            "imgs", [ViewSpec("ImageView", i) for i in range(1, 6)]
        )
        inflate(system.ctx, activity, layout)
        assert system.memory_of(activity.process.name) > before

    def test_dynamic_views_carry_no_id(self):
        spec = ViewSpec("TextView", dynamic=True)
        assert spec.view_id is None
