"""Unit tests for the Binder IPC model and Intent flags."""

import pytest

from repro.android.ipc import Binder
from repro.android.app.intent import Intent, IntentFlag
from repro.apps import make_benchmark_app
from repro.sim.context import SimContext


class TestBinder:
    def test_call_pays_two_hops(self):
        ctx = SimContext()
        binder = Binder(ctx, "app", "ATMS")
        result = binder.call(lambda: 42, label="test")
        assert result == 42
        assert ctx.now_ms == pytest.approx(2 * ctx.costs.ipc_call_ms)
        assert binder.calls_made == 1

    def test_oneway_pays_single_hop(self):
        ctx = SimContext()
        binder = Binder(ctx, "app", "ATMS")
        seen = []
        binder.oneway(lambda: seen.append(1))
        assert seen == [1]
        assert ctx.now_ms == pytest.approx(ctx.costs.ipc_call_ms)

    def test_hops_billed_to_client_binder_thread(self):
        ctx = SimContext()
        Binder(ctx, "client.app", "ATMS").call(lambda: None)
        intervals = ctx.recorder.busy
        assert all(i.process == "client.app" for i in intervals)
        assert all(i.thread == "binder" for i in intervals)

    def test_service_work_inside_call_is_attributed_separately(self):
        ctx = SimContext()
        binder = Binder(ctx, "client.app", "ATMS")

        def service_work():
            ctx.consume(5.0, "system_server", thread="server")

        binder.call(service_work)
        by_process = {}
        for interval in ctx.recorder.busy:
            by_process.setdefault(interval.process, 0.0)
            by_process[interval.process] += interval.duration_ms
        assert by_process["system_server"] == pytest.approx(5.0)
        assert by_process["client.app"] == pytest.approx(
            2 * ctx.costs.ipc_call_ms
        )


class TestIntent:
    def test_default_has_no_flags(self):
        intent = Intent(make_benchmark_app(1))
        assert not intent.has_flag(IntentFlag.SUNNY)
        assert not intent.has_flag(IntentFlag.NEW_TASK)

    def test_with_flag_is_non_destructive(self):
        intent = Intent(make_benchmark_app(1))
        sunny = intent.with_flag(IntentFlag.SUNNY)
        assert sunny.has_flag(IntentFlag.SUNNY)
        assert not intent.has_flag(IntentFlag.SUNNY)

    def test_flags_compose(self):
        intent = Intent(
            make_benchmark_app(1),
            flags=IntentFlag.SUNNY | IntentFlag.NEW_TASK,
        )
        assert intent.has_flag(IntentFlag.SUNNY)
        assert intent.has_flag(IntentFlag.NEW_TASK)
        assert not intent.has_flag(IntentFlag.SINGLE_TOP)

    def test_activity_name_defaults_to_main(self):
        assert Intent(make_benchmark_app(1)).activity_name == "main"
