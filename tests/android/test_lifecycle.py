"""Unit tests for the lifecycle state machine (Fig. 4)."""

import pytest

from repro.android.app.lifecycle import (
    ALIVE_STATES,
    LEGAL_TRANSITIONS,
    RCHDROID_STATES,
    VISIBLE_STATES,
    LifecycleState,
    check_transition,
)
from repro.errors import LifecycleError

_S = LifecycleState


def test_stock_happy_path_is_legal():
    path = [_S.INITIALIZED, _S.CREATED, _S.STARTED, _S.RESUMED,
            _S.PAUSED, _S.STOPPED, _S.DESTROYED]
    for current, target in zip(path, path[1:]):
        check_transition(current, target)


def test_relaunch_path_is_legal():
    for current, target in [(_S.RESUMED, _S.PAUSED), (_S.PAUSED, _S.STOPPED),
                            (_S.STOPPED, _S.DESTROYED)]:
        check_transition(current, target)


def test_rchdroid_shadow_entry_from_resumed_and_sunny():
    check_transition(_S.RESUMED, _S.SHADOW)
    check_transition(_S.SUNNY, _S.SHADOW)


def test_rchdroid_sunny_entry_from_started_and_shadow():
    check_transition(_S.STARTED, _S.SUNNY)   # init path
    check_transition(_S.SHADOW, _S.SUNNY)    # coin flip


def test_shadow_can_be_garbage_collected():
    check_transition(_S.SHADOW, _S.DESTROYED)


def test_destroyed_is_terminal():
    assert LEGAL_TRANSITIONS[_S.DESTROYED] == frozenset()


def test_illegal_transitions_raise():
    with pytest.raises(LifecycleError):
        check_transition(_S.CREATED, _S.RESUMED)
    with pytest.raises(LifecycleError):
        check_transition(_S.DESTROYED, _S.CREATED)
    with pytest.raises(LifecycleError):
        check_transition(_S.SHADOW, _S.RESUMED)


def test_shadow_cannot_jump_directly_to_stock_foreground():
    """A revived shadow becomes SUNNY (through the flip), never RESUMED."""
    assert _S.RESUMED not in LEGAL_TRANSITIONS[_S.SHADOW]


def test_state_groups():
    assert VISIBLE_STATES == {_S.RESUMED, _S.SUNNY}
    assert RCHDROID_STATES == {_S.SHADOW, _S.SUNNY}
    assert _S.DESTROYED not in ALIVE_STATES
    assert _S.SHADOW in ALIVE_STATES


def test_every_state_has_transition_entry():
    for state in LifecycleState:
        assert state in LEGAL_TRANSITIONS
