"""Unit tests: night-mode configuration dimension and dialog dismissal."""

import pytest

from repro import Android10Policy, AndroidSystem, RCHDroidPolicy
from repro.android.res import ConfigDimension, Configuration
from repro.apps import make_benchmark_app


class TestNightMode:
    def test_diff_reports_ui_mode(self):
        base = Configuration()
        assert base.diff(base.with_night_mode(True)) == {
            ConfigDimension.NIGHT_MODE
        }

    def test_night_mode_triggers_restart_on_stock(self):
        system = AndroidSystem(policy=Android10Policy())
        app = make_benchmark_app(2)
        system.launch(app)
        old = system.foreground_activity(app.package)
        assert system.set_night_mode(True) == "relaunch"
        assert old.destroyed

    def test_night_mode_is_transparent_under_rchdroid(self):
        system = AndroidSystem(policy=RCHDroidPolicy())
        app = make_benchmark_app(2)
        system.launch(app)
        system.write_slot(app, "first_drawable", "kept")
        assert system.set_night_mode(True) == "init"
        assert system.read_slot(app, "first_drawable") == "kept"
        assert system.set_night_mode(False) == "flip"

    def test_same_mode_is_a_noop(self):
        system = AndroidSystem(policy=RCHDroidPolicy())
        system.launch(make_benchmark_app(1))
        assert system.set_night_mode(False) == "none"


class TestDialogDismissal:
    def test_dismiss_removes_dialog(self):
        system = AndroidSystem(policy=Android10Policy())
        app = make_benchmark_app(1)
        system.launch(app)
        activity = system.foreground_activity(app.package)
        activity.show_dialog("progress")
        activity.dismiss_dialog("progress")
        assert activity.dialogs == []

    def test_dismiss_unknown_tag_is_noop(self):
        system = AndroidSystem(policy=Android10Policy())
        app = make_benchmark_app(1)
        system.launch(app)
        system.foreground_activity(app.package).dismiss_dialog("nope")

    def test_dismissed_dialog_does_not_leak_on_relaunch(self):
        system = AndroidSystem(policy=Android10Policy())
        app = make_benchmark_app(1)
        system.launch(app)
        activity = system.foreground_activity(app.package)
        activity.show_dialog("progress")
        activity.dismiss_dialog("progress")
        system.rotate()
        assert system.ctx.recorder.counters["window-leaks"] == 0


class TestAdbProperty:
    def test_system_exposes_adb_facade(self):
        system = AndroidSystem(policy=RCHDroidPolicy())
        system.launch(make_benchmark_app(1))
        out = system.adb.wm_size("1080x1920")
        assert "init" in out
