"""Unit tests for Bundle, Parcel, and Process."""

import pytest

from repro.android.os import Bundle, Parcel, Process
from repro.errors import NullPointerException
from repro.sim.context import SimContext


class TestBundle:
    def test_put_get(self):
        bundle = Bundle()
        bundle.put("k", 42)
        assert bundle.get("k") == 42

    def test_get_default(self):
        assert Bundle().get("missing", "fallback") == "fallback"

    def test_nested_bundles(self):
        inner = Bundle()
        inner.put("text", "hello")
        outer = Bundle()
        outer.put_bundle("view:1", inner)
        assert outer.get_bundle("view:1").get("text") == "hello"

    def test_get_bundle_on_scalar_returns_none(self):
        bundle = Bundle()
        bundle.put("k", 42)
        assert bundle.get_bundle("k") is None

    def test_size_counts_nested_entries(self):
        inner = Bundle()
        inner.put("a", 1)
        inner.put("b", 2)
        outer = Bundle()
        outer.put_bundle("inner", inner)
        outer.put("c", 3)
        assert outer.size() == 3

    def test_contains_and_keys(self):
        bundle = Bundle()
        bundle.put("x", 1)
        assert bundle.contains("x")
        assert not bundle.contains("y")
        assert bundle.keys() == ["x"]

    def test_is_empty(self):
        bundle = Bundle()
        assert bundle.is_empty()
        bundle.put("k", None)
        assert not bundle.is_empty()


class TestParcel:
    def test_deep_copy_is_independent(self):
        inner = Bundle()
        inner.put("list", [1, 2])
        original = Bundle()
        original.put_bundle("inner", inner)
        clone = Parcel.deep_copy(original)
        clone.get_bundle("inner").get("list").append(3)
        assert inner.get("list") == [1, 2]

    def test_deep_copy_preserves_values(self):
        original = Bundle()
        original.put("a", "text")
        original.put("b", 7)
        clone = Parcel.deep_copy(original)
        assert clone.get("a") == "text"
        assert clone.get("b") == 7


class TestProcess:
    def test_registers_base_heap(self):
        ctx = SimContext()
        process = Process(ctx, "app", 40.0)
        assert process.heap_mb == 40.0

    def test_crash_kills_and_zeroes_heap(self):
        ctx = SimContext()
        process = Process(ctx, "app", 40.0)
        process.crash(NullPointerException("boom"))
        assert not process.alive
        assert process.heap_mb == 0.0
        assert ctx.recorder.crashed("app")

    def test_crash_notifies_watchers_once(self):
        ctx = SimContext()
        process = Process(ctx, "app", 40.0)
        deaths = []
        process.on_death(deaths.append)
        process.crash(NullPointerException("boom"))
        process.crash(NullPointerException("again"))
        assert len(deaths) == 1
        assert len(ctx.recorder.crashes) == 1

    def test_kill_is_clean_death(self):
        ctx = SimContext()
        process = Process(ctx, "app", 40.0)
        process.kill()
        assert not process.alive
        assert process.heap_mb == 0.0
        assert not ctx.recorder.crashed("app")
