"""Unit tests for Configuration and ResourceTable."""

import pytest

from repro.android.res import (
    DEFAULT_LANDSCAPE,
    DEFAULT_PORTRAIT,
    ConfigDimension,
    Configuration,
    Orientation,
    ResourceTable,
)
from repro.android.views.inflate import LayoutSpec, ViewSpec
from repro.sim.context import SimContext


class TestConfiguration:
    def test_defaults_are_landscape_1920x1080(self):
        config = Configuration()
        assert config.orientation is Orientation.LANDSCAPE
        assert (config.width_px, config.height_px) == (1920, 1080)

    def test_rotated_flips_orientation_and_swaps_dims(self):
        rotated = DEFAULT_LANDSCAPE.rotated()
        assert rotated.orientation is Orientation.PORTRAIT
        assert (rotated.width_px, rotated.height_px) == (1080, 1920)

    def test_double_rotation_is_identity(self):
        assert DEFAULT_LANDSCAPE.rotated().rotated() == DEFAULT_LANDSCAPE

    def test_resized_derives_orientation(self):
        portrait = DEFAULT_LANDSCAPE.resized(1080, 1920)
        assert portrait.orientation is Orientation.PORTRAIT
        landscape = portrait.resized(1920, 1080)
        assert landscape.orientation is Orientation.LANDSCAPE

    def test_diff_empty_for_equal_configs(self):
        assert DEFAULT_LANDSCAPE.diff(Configuration()) == set()

    def test_diff_rotation(self):
        changed = DEFAULT_LANDSCAPE.diff(DEFAULT_LANDSCAPE.rotated())
        assert ConfigDimension.ORIENTATION in changed
        assert ConfigDimension.SCREEN_SIZE in changed

    def test_diff_locale_keyboard_font(self):
        other = (
            DEFAULT_LANDSCAPE.with_locale("fr")
            .with_keyboard(True)
            .with_font_scale(1.3)
        )
        assert DEFAULT_LANDSCAPE.diff(other) == {
            ConfigDimension.LOCALE,
            ConfigDimension.KEYBOARD,
            ConfigDimension.FONT_SCALE,
        }

    def test_configuration_is_immutable(self):
        with pytest.raises(Exception):
            DEFAULT_LANDSCAPE.orientation = Orientation.PORTRAIT  # type: ignore

    def test_orientation_flipped(self):
        assert Orientation.PORTRAIT.flipped() is Orientation.LANDSCAPE
        assert Orientation.LANDSCAPE.flipped() is Orientation.PORTRAIT


class TestResourceTable:
    def _layout(self, name="main"):
        return LayoutSpec(name=name, roots=[ViewSpec("TextView", view_id=1)])

    def test_resolve_prefers_matching_qualifier(self):
        table = ResourceTable()
        portrait = self._layout("portrait")
        landscape = self._layout("landscape")
        table.add_layout("main", portrait, Orientation.PORTRAIT)
        table.add_layout("main", landscape, Orientation.LANDSCAPE)
        assert table.resolve_layout("main", DEFAULT_PORTRAIT) is portrait
        assert table.resolve_layout("main", DEFAULT_LANDSCAPE) is landscape

    def test_resolve_falls_back_to_default_variant(self):
        table = ResourceTable()
        default = self._layout()
        table.add_layout("main", default, None)
        assert table.resolve_layout("main", DEFAULT_PORTRAIT) is default

    def test_resolve_falls_back_to_any_variant(self):
        table = ResourceTable()
        only = self._layout()
        table.add_layout("main", only, Orientation.PORTRAIT)
        assert table.resolve_layout("main", DEFAULT_LANDSCAPE) is only

    def test_unknown_layout_raises(self):
        with pytest.raises(KeyError):
            ResourceTable().resolve_layout("missing", DEFAULT_LANDSCAPE)

    def test_string_resolution_by_locale(self):
        table = ResourceTable()
        table.add_string("hello", "Hello", "en")
        table.add_string("hello", "Bonjour", "fr")
        assert table.resolve_string("hello", DEFAULT_LANDSCAPE) == "Hello"
        assert (
            table.resolve_string("hello", DEFAULT_LANDSCAPE.with_locale("fr"))
            == "Bonjour"
        )

    def test_string_falls_back_to_english_then_key(self):
        table = ResourceTable()
        table.add_string("hello", "Hello", "en")
        german = DEFAULT_LANDSCAPE.with_locale("de")
        assert table.resolve_string("hello", german) == "Hello"
        assert table.resolve_string("missing", german) == "missing"

    def test_load_charges_scaled_cost(self):
        ctx = SimContext()
        table = ResourceTable(resource_factor=2.0)
        table.load(ctx, "app", DEFAULT_LANDSCAPE)
        assert ctx.now_ms == pytest.approx(
            2.0 * ctx.costs.resource_load_base_ms
        )
