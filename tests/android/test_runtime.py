"""Unit tests for Looper, Handler, and AsyncTask."""

import pytest

from repro.android.os import Process
from repro.android.runtime import AsyncTask, Handler, Looper
from repro.errors import NullPointerException
from repro.sim.context import SimContext


@pytest.fixture
def env():
    ctx = SimContext()
    process = Process(ctx, "app", 32.0)
    looper = Looper(ctx, process)
    return ctx, process, looper


class TestLooper:
    def test_post_runs_later(self, env):
        ctx, _, looper = env
        ran = []
        looper.post(lambda: ran.append(ctx.now_ms), delay_ms=10.0)
        assert ran == []
        ctx.run_until_idle()
        assert ran == [10.0]

    def test_messages_to_dead_process_are_dropped(self, env):
        ctx, process, looper = env
        ran = []
        looper.post(lambda: ran.append(1), delay_ms=10.0)
        process.kill()
        ctx.run_until_idle()
        assert ran == []
        assert looper.messages_dropped == 1

    def test_appcrash_in_message_kills_process(self, env):
        ctx, process, looper = env

        def bad():
            raise NullPointerException("stale view")

        looper.post(bad)
        ctx.run_until_idle()
        assert not process.alive
        assert ctx.recorder.crashes[0].exception == "NullPointerException"

    def test_non_appcrash_exceptions_propagate(self, env):
        ctx, _, looper = env

        def bug():
            raise RuntimeError("simulator bug")

        looper.post(bug)
        with pytest.raises(RuntimeError):
            ctx.run_until_idle()

    def test_cancelled_message_does_not_run(self, env):
        ctx, _, looper = env
        ran = []
        message = looper.post(lambda: ran.append(1), delay_ms=5.0)
        message.cancel()
        ctx.run_until_idle()
        assert ran == []


class TestHandler:
    def test_post_delayed(self, env):
        ctx, _, looper = env
        handler = Handler(looper)
        ran = []
        handler.post_delayed(lambda: ran.append(ctx.now_ms), 30.0)
        ctx.run_until_idle()
        assert ran == [30.0]


class TestAsyncTask:
    def test_completes_after_duration(self, env):
        ctx, _, looper = env
        done = []
        task = AsyncTask(ctx, looper, 5000.0, lambda: done.append(ctx.now_ms))
        task.execute()
        ctx.run_until_idle()
        assert task.finished
        assert done and done[0] >= 5000.0

    def test_background_work_does_not_block_ui(self, env):
        """The async duration passes as wall time, not UI busy time."""
        ctx, _, looper = env
        task = AsyncTask(ctx, looper, 5000.0, lambda: None)
        task.execute()
        ctx.run_until_idle()
        ui_busy = sum(
            i.duration_ms for i in ctx.recorder.busy if i.thread == "ui"
        )
        assert ui_busy < 5000.0

    def test_cancel_prevents_callback(self, env):
        ctx, _, looper = env
        done = []
        task = AsyncTask(ctx, looper, 1000.0, lambda: done.append(1)).execute()
        task.cancel()
        ctx.run_until_idle()
        assert done == []
        assert not task.finished

    def test_completion_dropped_when_process_dies(self, env):
        ctx, process, looper = env
        done = []
        AsyncTask(ctx, looper, 1000.0, lambda: done.append(1)).execute()
        process.kill()
        ctx.run_until_idle()
        assert done == []

    def test_records_start_and_return_events(self, env):
        ctx, _, looper = env
        AsyncTask(ctx, looper, 100.0, lambda: None, label="load").execute()
        ctx.run_until_idle()
        assert ctx.recorder.events_of_kind("async-start")
        assert ctx.recorder.events_of_kind("async-return")
