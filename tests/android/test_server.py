"""Unit tests for records, the activity stack, and the starter."""

import pytest

from repro import Android10Policy, AndroidSystem
from repro.android.app.intent import Intent, IntentFlag
from repro.apps import make_benchmark_app


def booted():
    system = AndroidSystem(policy=Android10Policy())
    app = make_benchmark_app(1)
    record = system.launch(app)
    task = record.task
    return system, app, record, task


class TestRecordsAndTask:
    def test_record_tokens_are_unique_within_a_system(self):
        system = AndroidSystem(policy=Android10Policy())
        r1 = system.launch(make_benchmark_app(1, package="tok.one"))
        r2 = system.launch(make_benchmark_app(1, package="tok.two"))
        assert r1.token != r2.token

    def test_shadow_state_accessors(self):
        _, _, record, _ = booted()
        assert not record.is_shadow()
        record.set_shadow_state(True)
        assert record.is_shadow()

    def test_task_push_and_top(self):
        _, _, record, task = booted()
        assert task.top() is record
        assert len(task) == 1

    def test_move_to_top(self):
        system, app, record, task = booted()
        intent = Intent(app, flags=IntentFlag.SUNNY)
        result = system.atms.starter.start_activity_unchecked(
            intent, task, system.atms.config, current=None
        )
        assert task.top() is result.record
        task.move_to_top(record)
        assert task.top() is record

    def test_instance_alive_tracks_lifecycle(self):
        _, _, record, _ = booted()
        assert record.instance_alive
        record.instance.perform_pause()
        record.instance.perform_stop()
        record.instance.perform_destroy()
        assert not record.instance_alive


class TestStack:
    def test_top_record_follows_task_order(self):
        system = AndroidSystem(policy=Android10Policy())
        app1 = make_benchmark_app(1, package="app.one")
        app2 = make_benchmark_app(1, package="app.two")
        system.launch(app1)
        record2 = system.launch(app2)
        assert system.atms.stack.top_record() is record2

    def test_find_task_by_package(self):
        system = AndroidSystem(policy=Android10Policy())
        app = make_benchmark_app(1, package="app.one")
        record = system.launch(app)
        assert system.atms.stack.find_task("app.one") is record.task
        assert system.atms.stack.find_task("missing") is None

    def test_find_shadow_skips_excluded_and_dead(self):
        system, app, record, task = booted()
        stack = system.atms.stack
        record.set_shadow_state(True)
        # excluded record is not returned
        assert stack.find_shadow_activity_locked(task, exclude=record) is None
        # found when not excluded and instance alive
        assert stack.find_shadow_activity_locked(task) is record
        # dead instance disqualifies
        record.instance.perform_pause()
        record.instance.perform_stop()
        record.instance.perform_destroy()
        assert stack.find_shadow_activity_locked(task) is None


class TestStarter:
    def test_default_flag_dedups_top_activity(self):
        system, app, record, task = booted()
        result = system.atms.starter.start_activity_unchecked(
            Intent(app), task, system.atms.config
        )
        assert result.record is record
        assert not result.created

    def test_sunny_flag_allows_second_instance(self):
        """The Fig. 6(1) behaviour stock Android forbids."""
        system, app, record, task = booted()
        result = system.atms.starter.start_activity_unchecked(
            Intent(app, flags=IntentFlag.SUNNY), task, system.atms.config,
            current=record,
        )
        assert result.created
        assert result.record is not record
        assert result.record.activity_name == record.activity_name
        assert len(task) == 2

    def test_sunny_flag_prefers_coin_flip(self):
        """Fig. 6(2): a live shadow record is reordered, not duplicated."""
        system, app, record, task = booted()
        # create the second instance and shadow the first
        second = system.atms.starter.start_activity_unchecked(
            Intent(app, flags=IntentFlag.SUNNY), task, system.atms.config,
            current=record,
        ).record
        thread = system.atms.thread_of(app.package)
        thread.perform_launch_activity(second, None)
        record.set_shadow_state(True)

        result = system.atms.starter.start_activity_unchecked(
            Intent(app, flags=IntentFlag.SUNNY), task, system.atms.config,
            current=second,
        )
        assert result.flipped
        assert result.record is record
        assert not record.is_shadow()
        assert task.top() is record
        assert len(task) == 2

    def test_coin_flip_counters(self):
        system, app, record, task = booted()
        system.atms.starter.start_activity_unchecked(
            Intent(app, flags=IntentFlag.SUNNY), task, system.atms.config,
            current=record,
        )
        assert system.ctx.recorder.counters["coinflip-miss"] == 1
