"""Unit tests for SharedPreferences and the durability ladder."""

import pytest

from repro import Android10Policy, AndroidSystem, RCHDroidPolicy
from repro.android.storage import SharedPreferences
from repro.android.views.inflate import ViewSpec
from repro.apps import make_benchmark_app
from repro.apps.dsl import AppSpec, AsyncScript, StateSlot, StorageKind, \
    two_orientation_resources
from repro.sim.context import SimContext


class TestSharedPreferences:
    def test_put_get_roundtrip(self):
        ctx = SimContext()
        prefs = SharedPreferences(ctx, "pkg")
        prefs.put("k", 42)
        assert prefs.get("k") == 42
        assert prefs.contains("k")

    def test_separate_packages_are_isolated(self):
        ctx = SimContext()
        SharedPreferences(ctx, "a").put("k", 1)
        assert SharedPreferences(ctx, "b").get("k") is None

    def test_two_handles_share_the_file(self):
        ctx = SimContext()
        SharedPreferences(ctx, "pkg").put("k", 1)
        assert SharedPreferences(ctx, "pkg").get("k") == 1

    def test_commit_has_a_cost(self):
        ctx = SimContext()
        prefs = SharedPreferences(ctx, "pkg")
        before = ctx.now_ms
        prefs.put("k", 1)
        assert ctx.now_ms > before

    def test_remove_and_clear(self):
        ctx = SimContext()
        prefs = SharedPreferences(ctx, "pkg")
        prefs.put("a", 1)
        prefs.put("b", 2)
        prefs.remove("a")
        assert not prefs.contains("a")
        prefs.clear()
        assert not prefs.contains("b")


def persisted_app(package="persist.app"):
    return AppSpec(
        package=package, label="p",
        resources=two_orientation_resources(
            "main", [ViewSpec("TextView", view_id=10)]
        ),
        slots=(StateSlot("setting", StorageKind.PERSISTED),),
    )


class TestDurabilityLadder:
    @pytest.mark.parametrize("policy", [Android10Policy, RCHDroidPolicy])
    def test_persisted_state_survives_restart(self, policy):
        system = AndroidSystem(policy=policy())
        app = persisted_app()
        system.launch(app)
        system.write_slot(app, "setting", "durable")
        system.rotate()
        system.rotate()
        assert system.read_slot(app, "setting") == "durable"

    def test_persisted_state_survives_a_crash_and_relaunch(self):
        system = AndroidSystem(policy=Android10Policy())
        app = AppSpec(
            package="persist.crash", label="c",
            resources=two_orientation_resources(
                "main", [ViewSpec("ImageView", view_id=10)]
            ),
            slots=(StateSlot("setting", StorageKind.PERSISTED),),
            async_script=AsyncScript("bg", 2_000.0, ((10, "drawable", "x"),)),
        )
        system.launch(app)
        system.write_slot(app, "setting", "durable")
        system.start_async(app)
        system.rotate()
        system.run_until_idle()
        assert system.crashed(app.package)
        # The user relaunches the app: fresh process, same device flash.
        system.launch(app)
        assert system.read_slot(app, "setting") == "durable"

    def test_application_state_does_not_survive_the_crash(self):
        """Contrast: Application-object state dies with the process."""
        system = AndroidSystem(policy=Android10Policy())
        app = AppSpec(
            package="appstate.crash2", label="c",
            resources=two_orientation_resources(
                "main", [ViewSpec("ImageView", view_id=10)]
            ),
            slots=(StateSlot("session", StorageKind.APPLICATION),),
            async_script=AsyncScript("bg", 2_000.0, ((10, "drawable", "x"),)),
        )
        system.launch(app)
        system.write_slot(app, "session", "volatile")
        system.start_async(app)
        system.rotate()
        system.run_until_idle()
        assert system.crashed(app.package)
        system.launch(app)
        assert system.read_slot(app, "session") is None
