"""Unit tests for the view base classes and the invalidate pipeline."""

import pytest

from repro.android.os import Bundle
from repro.android.views.view import DecorView, View, ViewGroup
from repro.android.views.widgets import EditText, TextView
from repro.errors import NullPointerException
from repro.sim.context import SimContext


@pytest.fixture
def ctx():
    return SimContext()


def make_tree(ctx):
    decor = DecorView(ctx)
    group = ViewGroup(ctx, view_id=1)
    leaf_a = TextView(ctx, view_id=2)
    leaf_b = TextView(ctx, view_id=3)
    group.add_child(leaf_a)
    group.add_child(leaf_b)
    decor.add_child(group)
    return decor, group, leaf_a, leaf_b


class TestTraversal:
    def test_iter_tree_is_preorder(self, ctx):
        decor, group, leaf_a, leaf_b = make_tree(ctx)
        assert list(decor.iter_tree()) == [decor, group, leaf_a, leaf_b]

    def test_count_views(self, ctx):
        decor, *_ = make_tree(ctx)
        assert decor.count_views() == 4

    def test_find_by_id(self, ctx):
        decor, _, leaf_a, _ = make_tree(ctx)
        assert decor.find_by_id(2) is leaf_a
        assert decor.find_by_id(99) is None


class TestAttributePipeline:
    def test_set_attr_marks_dirty(self, ctx):
        view = TextView(ctx, view_id=1)
        view.set_attr("text", "hi")
        assert view.dirty
        assert view.get_attr("text") == "hi"

    def test_silent_set_skips_invalidate(self, ctx):
        view = TextView(ctx, view_id=1)
        view.set_attr("text", "hi", silent=True)
        assert not view.dirty

    def test_invalidate_hook_runs_via_owner(self, ctx):
        from repro.apps import make_benchmark_app
        from repro import AndroidSystem

        system = AndroidSystem()
        app = make_benchmark_app(1)
        record = system.launch(app)
        activity = record.instance
        seen = []
        activity.invalidate_hook = seen.append
        view = activity.require_view(10)
        view.set_attr("text", "new")
        assert seen == [view]

    def test_mutating_destroyed_view_raises_npe(self, ctx):
        view = TextView(ctx, view_id=1)
        view.destroy()
        with pytest.raises(NullPointerException):
            view.set_attr("text", "boom")

    def test_invalidate_on_destroyed_view_raises_npe(self, ctx):
        view = TextView(ctx, view_id=1)
        view.destroy()
        with pytest.raises(NullPointerException):
            view.invalidate()


class TestDestroy:
    def test_destroy_is_recursive(self, ctx):
        decor, group, leaf_a, leaf_b = make_tree(ctx)
        decor.destroy()
        assert not any(v.alive for v in (decor, group, leaf_a, leaf_b))

    def test_destroy_is_idempotent(self, ctx):
        view = TextView(ctx, view_id=1)
        view.destroy()
        view.destroy()
        assert not view.alive


class TestSaveRestore:
    def test_stock_save_skips_non_auto_saved(self, ctx):
        view = TextView(ctx, view_id=1)
        view.set_attr("text", "typed", silent=True)
        bundle = Bundle()
        view.save_state(bundle, full=False)
        assert bundle.get_bundle("view:1") is None

    def test_stock_save_keeps_edittext_text(self, ctx):
        view = EditText(ctx, view_id=1)
        view.set_attr("text", "typed", silent=True)
        bundle = Bundle()
        view.save_state(bundle, full=False)
        assert bundle.get_bundle("view:1").get("text") == "typed"

    def test_full_save_keeps_everything(self, ctx):
        view = TextView(ctx, view_id=1)
        view.set_attr("text", "typed", silent=True)
        bundle = Bundle()
        view.save_state(bundle, full=True)
        assert bundle.get_bundle("view:1").get("text") == "typed"

    def test_idless_views_never_saved(self, ctx):
        view = TextView(ctx)
        view.set_attr("text", "typed", silent=True)
        bundle = Bundle()
        view.save_state(bundle, full=True)
        assert bundle.is_empty()

    def test_hierarchy_roundtrip(self, ctx):
        decor, _, leaf_a, leaf_b = make_tree(ctx)
        leaf_a.set_attr("text", "alpha", silent=True)
        leaf_b.set_attr("text", "beta", silent=True)
        bundle = Bundle()
        decor.save_state(bundle, full=True)

        decor2, _, leaf_a2, leaf_b2 = make_tree(ctx)
        decor2.restore_state(bundle)
        assert leaf_a2.get_attr("text") == "alpha"
        assert leaf_b2.get_attr("text") == "beta"

    def test_restore_ignores_unknown_ids(self, ctx):
        bundle = Bundle()
        inner = Bundle()
        inner.put("text", "x")
        bundle.put_bundle("view:99", inner)
        view = TextView(ctx, view_id=1)
        view.restore_state(bundle)
        assert view.get_attr("text") is None


class TestRCHDroidSurface:
    def test_shadow_state_dispatch_is_recursive(self, ctx):
        decor, group, leaf_a, leaf_b = make_tree(ctx)
        decor.dispatch_shadow_state_changed(True)
        assert all(v.shadow_state for v in decor.iter_tree())
        decor.dispatch_shadow_state_changed(False)
        assert not any(v.shadow_state for v in decor.iter_tree())

    def test_sunny_state_dispatch_is_recursive(self, ctx):
        decor, *_ = make_tree(ctx)
        decor.dispatch_sunny_state_changed(True)
        assert all(v.sunny_state for v in decor.iter_tree())

    def test_sunny_peer_defaults_to_none(self, ctx):
        assert View(ctx).sunny_peer is None
