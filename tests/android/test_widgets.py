"""Unit tests for the widget library (Table 1 migration policies)."""

import pytest

from repro.android.views.widgets import (
    AbsListView,
    Button,
    CheckBox,
    EditText,
    GridView,
    ImageView,
    ListView,
    ProgressBar,
    ScrollView,
    SeekBar,
    TextView,
    VideoView,
    WIDGET_TYPES,
)
from repro.sim.context import SimContext


@pytest.fixture
def ctx():
    return SimContext()


class TestTable1Policies:
    """Every view type in Table 1 declares exactly its migration policy."""

    def test_textview_migrates_text(self):
        assert TextView.MIGRATED_ATTRS == {"text": "setText"}

    def test_imageview_migrates_drawable(self):
        assert ImageView.MIGRATED_ATTRS == {"drawable": "setDrawable"}

    def test_abslistview_migrates_selector_and_checked(self):
        assert AbsListView.MIGRATED_ATTRS == {
            "selector_position": "positionSelector",
            "checked_item": "setItemChecked",
        }

    def test_videoview_migrates_uri(self):
        assert VideoView.MIGRATED_ATTRS["video_uri"] == "setVideoURI"

    def test_progressbar_migrates_progress(self):
        assert ProgressBar.MIGRATED_ATTRS == {"progress": "setProgress"}

    def test_subtypes_inherit_parent_policy(self):
        """User-defined/extended views migrate by the basic type they
        extend (paper Section 3.3)."""
        assert EditText.MIGRATED_ATTRS == TextView.MIGRATED_ATTRS
        assert Button.MIGRATED_ATTRS == TextView.MIGRATED_ATTRS
        assert ListView.MIGRATED_ATTRS == AbsListView.MIGRATED_ATTRS
        assert GridView.MIGRATED_ATTRS == AbsListView.MIGRATED_ATTRS
        assert SeekBar.MIGRATED_ATTRS == ProgressBar.MIGRATED_ATTRS

    def test_checkbox_extends_button_policy(self):
        assert CheckBox.MIGRATED_ATTRS["checked"] == "setChecked"
        assert CheckBox.MIGRATED_ATTRS["text"] == "setText"


class TestAutoSaveCoverage:
    """Stock save covers EditText text; the bug-class attributes are not
    covered (that is what makes the Table 3 / Table 5 corpus lose state)."""

    def test_edittext_text_is_auto_saved(self):
        assert "text" in EditText.AUTO_SAVED_ATTRS

    def test_plain_textview_text_is_not(self):
        assert "text" not in TextView.AUTO_SAVED_ATTRS

    @pytest.mark.parametrize(
        "widget", [TextView, ImageView, AbsListView, ProgressBar, SeekBar,
                   CheckBox, VideoView, ScrollView]
    )
    def test_bug_class_widgets_not_auto_saved(self, widget):
        assert not widget.AUTO_SAVED_ATTRS


class TestWidgetBehaviour:
    def test_textview_set_text(self, ctx):
        view = TextView(ctx, view_id=1)
        view.set_text("hello")
        assert view.text == "hello"

    def test_button_click_dispatches_handler(self, ctx):
        button = Button(ctx, view_id=1)
        clicks = []
        button.on_click = lambda: clicks.append(1)
        button.click()
        assert clicks == [1]

    def test_button_click_without_handler_is_fine(self, ctx):
        Button(ctx, view_id=1).click()

    def test_imageview_drawable(self, ctx):
        image = ImageView(ctx, view_id=1)
        image.set_drawable("bitmap")
        assert image.drawable == "bitmap"

    def test_imageview_has_bitmap_footprint(self):
        assert ImageView.MEMORY_EXTRA_MB > TextView.MEMORY_EXTRA_MB

    def test_scrollview_scroll_rides_selector_channel(self, ctx):
        scroll = ScrollView(ctx, view_id=1)
        scroll.scroll_to(120)
        assert scroll.scroll_offset == 120
        assert scroll.get_attr("selector_position") == 120

    def test_abslistview_selection(self, ctx):
        lst = ListView(ctx, view_id=1)
        lst.position_selector(3)
        lst.set_item_checked(5)
        assert lst.get_attr("selector_position") == 3
        assert lst.get_attr("checked_item") == 5

    def test_progressbar_progress(self, ctx):
        bar = SeekBar(ctx, view_id=1)
        bar.set_progress(42)
        assert bar.progress == 42

    def test_checkbox_checked(self, ctx):
        box = CheckBox(ctx, view_id=1)
        assert box.checked is False
        box.set_checked(True)
        assert box.checked is True


class TestRegistry:
    def test_registry_covers_all_named_types(self):
        for name in ("TextView", "EditText", "Button", "ImageView",
                     "AbsListView", "ListView", "GridView", "ScrollView",
                     "VideoView", "ProgressBar", "SeekBar", "CheckBox"):
            assert name in WIDGET_TYPES

    def test_registry_keys_match_view_type(self):
        for name, cls in WIDGET_TYPES.items():
            assert cls.view_type == name
