"""Unit tests for the benchmark app and workload generators."""

import pytest

from repro.apps.benchmark import (
    BUTTON_ID,
    IMAGE_ID_BASE,
    image_view_ids,
    make_benchmark_app,
)
from repro.apps.dsl import IssueKind
from repro.apps.workload import (
    RotationTraceSpec,
    changes_per_minute,
    interaction_session,
    rotation_trace,
)
from repro.sim.rng import DeterministicRng


class TestBenchmarkApp:
    def test_view_tree_matches_paper_description(self):
        """N ImageViews and a Button (Section 5.1)."""
        app = make_benchmark_app(8)
        # decor + container + button + 8 images
        assert app.view_count() == 11

    def test_async_updates_every_image(self):
        app = make_benchmark_app(3)
        assert len(app.async_script.updates) == 3
        assert {u[0] for u in app.async_script.updates} == set(
            image_view_ids(3)
        )

    def test_default_async_duration_is_five_seconds(self):
        assert make_benchmark_app(1).async_script.duration_ms == 5_000.0

    def test_custom_duration_and_package(self):
        app = make_benchmark_app(2, async_duration_ms=50_000.0,
                                 package="custom.pkg")
        assert app.async_script.duration_ms == 50_000.0
        assert app.package == "custom.pkg"

    def test_issue_class_is_async_crash(self):
        assert make_benchmark_app(1).issue is IssueKind.ASYNC_CRASH

    def test_ids_are_stable(self):
        assert BUTTON_ID == 10
        assert image_view_ids(2) == [IMAGE_ID_BASE, IMAGE_ID_BASE + 1]


class TestRotationTrace:
    def test_deterministic_per_seed(self):
        spec = RotationTraceSpec(duration_ms=120_000.0)
        a = rotation_trace(DeterministicRng(5), spec)
        b = rotation_trace(DeterministicRng(5), spec)
        assert a == b

    def test_timestamps_sorted_and_bounded(self):
        spec = RotationTraceSpec(duration_ms=120_000.0)
        trace = rotation_trace(DeterministicRng(5), spec)
        assert trace == sorted(trace)
        assert all(0 <= t < 120_000.0 for t in trace)

    def test_rate_is_roughly_six_per_minute(self):
        spec = RotationTraceSpec(duration_ms=600_000.0)
        trace = rotation_trace(DeterministicRng(5), spec)
        rate = changes_per_minute(trace, spec.duration_ms)
        assert 3.0 <= rate <= 9.0

    def test_trace_is_bursty(self):
        """Both short (<6 s) and long (>15 s) gaps must occur."""
        spec = RotationTraceSpec(duration_ms=600_000.0)
        trace = rotation_trace(DeterministicRng(5), spec)
        gaps = [b - a for a, b in zip(trace, trace[1:])]
        assert any(g <= 6_000.0 for g in gaps)
        assert any(g >= 15_000.0 for g in gaps)


class TestInteractionSession:
    def test_events_sorted_and_typed(self):
        events = interaction_session(DeterministicRng(5))
        assert events == sorted(events)
        kinds = {kind for _, kind in events}
        assert kinds == {"write", "rotate"}

    def test_deterministic(self):
        assert interaction_session(DeterministicRng(5)) == interaction_session(
            DeterministicRng(5)
        )
