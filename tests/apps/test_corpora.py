"""Unit tests for the 27-app and top-100 corpora."""

from collections import Counter

import pytest

from repro.apps.appset27 import UNFIXABLE_APPS, build_appset27, table3_rows
from repro.apps.dsl import IssueKind, StorageKind
from repro.apps.top100 import (
    RESTART_BASED_NO_ISSUE,
    TOP100_TABLE,
    UNFIXABLE_TOP100,
    build_top100,
    expected_counts,
)


class TestAppset27:
    def test_has_27_apps(self):
        assert len(build_appset27()) == 27

    def test_deterministic_for_seed(self):
        a = build_appset27(seed=1)
        b = build_appset27(seed=1)
        assert [x.logic_cost_ms for x in a] == [x.logic_cost_ms for x in b]
        assert [x.extra_heap_mb for x in a] == [x.extra_heap_mb for x in b]

    def test_seed_changes_draws_not_structure(self):
        a = build_appset27(seed=1)
        b = build_appset27(seed=2)
        assert [x.label for x in a] == [x.label for x in b]
        assert [x.logic_cost_ms for x in a] != [x.logic_cost_ms for x in b]

    def test_issue_split_matches_table3(self):
        counts = Counter(app.issue for app in build_appset27())
        assert counts[IssueKind.VIEW_STATE_LOSS] == 25
        assert counts[IssueKind.BARE_FIELD_LOSS] == 2

    def test_unfixable_apps_are_bare_field(self):
        for app in build_appset27():
            if app.label in UNFIXABLE_APPS:
                assert app.issue is IssueKind.BARE_FIELD_LOSS
                assert app.slots[0].storage is StorageKind.BARE_FIELD

    def test_no_app_implements_on_save(self):
        """Table 3 apps are buggy precisely because they don't."""
        assert not any(app.implements_on_save for app in build_appset27())

    def test_packages_are_unique(self):
        packages = [app.package for app in build_appset27()]
        assert len(set(packages)) == 27

    def test_row_metadata_preserved(self):
        rows = table3_rows()
        assert rows[0].name == "AlarmClockPlus"
        assert rows[8].name == "DiskDiggerPro"
        apps = build_appset27()
        assert apps[8].issue_description.startswith("The percentage")


class TestTop100:
    def test_has_100_rows_and_apps(self):
        assert len(TOP100_TABLE) == 100
        assert len(build_top100()) == 100

    def test_published_aggregates(self):
        expected = expected_counts()
        yes = sum(1 for row in TOP100_TABLE if row.has_issue)
        assert yes == expected["with_issue"] == 63

    def test_issue_kind_split(self):
        counts = Counter(app.issue for app in build_top100())
        assert counts[IssueKind.VIEW_STATE_LOSS] == 59
        assert counts[IssueKind.BARE_FIELD_LOSS] == 4
        assert counts[IssueKind.SELF_HANDLED] == 26
        assert counts[IssueKind.NONE] == 11

    def test_unfixable_membership(self):
        for app in build_top100():
            if app.label in UNFIXABLE_TOP100:
                assert app.issue is IssueKind.BARE_FIELD_LOSS

    def test_self_handled_flag_is_consistent(self):
        for app in build_top100():
            assert app.handles_config_changes == (
                app.issue is IssueKind.SELF_HANDLED
            )

    def test_no_issue_apps_use_auto_saved_widget(self):
        for app in build_top100():
            if app.issue is IssueKind.NONE:
                assert app.label in RESTART_BASED_NO_ISSUE
                assert app.slots[0].attr == "text"

    def test_packages_are_unique_and_safe(self):
        packages = [app.package for app in build_top100()]
        assert len(set(packages)) == 100
        for package in packages:
            assert "&" not in package and "'" not in package

    def test_known_rows(self):
        by_name = {row.name: row for row in TOP100_TABLE}
        assert by_name["Twitter"].has_issue
        assert by_name["Twitter"].problem == "State loss (text box)"
        assert not by_name["Instagram"].has_issue
        assert by_name["Orbot"].problem == "State loss (selection list)"

    def test_top100_apps_are_bigger_than_tp37(self):
        from statistics import mean

        tp37 = build_appset27()
        top = build_top100()
        assert mean(a.extra_heap_mb for a in top) > mean(
            a.extra_heap_mb for a in tp37
        )
        assert mean(a.logic_cost_ms for a in top) > mean(
            a.logic_cost_ms for a in tp37
        )
