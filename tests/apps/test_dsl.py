"""Unit tests for the app-description DSL."""

import pytest

from repro import Android10Policy, AndroidSystem
from repro.android.os import Bundle
from repro.android.views.inflate import ViewSpec
from repro.apps.dsl import (
    AppSpec,
    AsyncScript,
    IssueKind,
    StateSlot,
    StorageKind,
    filler_views,
    simple_layout,
    two_orientation_resources,
)


def minimal_app(**kwargs):
    widgets = kwargs.pop(
        "widgets", [ViewSpec("TextView", view_id=10)]
    )
    return AppSpec(
        package=kwargs.pop("package", "dsl.test"),
        label="t",
        resources=two_orientation_resources("main", widgets),
        **kwargs,
    )


class TestStateSlots:
    def launch(self, app):
        system = AndroidSystem(policy=Android10Policy())
        system.launch(app)
        return system, system.foreground_activity(app.package)

    def test_view_slot_roundtrip(self):
        slot = StateSlot("s", StorageKind.VIEW_ATTR, view_id=10, attr="text")
        app = minimal_app(slots=(slot,))
        _, activity = self.launch(app)
        slot.write(activity, "value")
        assert slot.read(activity) == "value"
        assert activity.require_view(10).get_attr("text") == "value"

    def test_bare_field_slot_roundtrip(self):
        slot = StateSlot("s", StorageKind.BARE_FIELD)
        app = minimal_app(slots=(slot,))
        _, activity = self.launch(app)
        slot.write(activity, 42)
        assert activity.fields["s"] == 42
        assert slot.read(activity) == 42

    def test_custom_slot_roundtrip(self):
        slot = StateSlot("s", StorageKind.CUSTOM_SAVED)
        app = minimal_app(slots=(slot,), implements_on_save=True)
        _, activity = self.launch(app)
        slot.write(activity, "note")
        assert activity.custom_state["s"] == "note"

    def test_unset_slot_reads_none(self):
        slot = StateSlot("s", StorageKind.VIEW_ATTR, view_id=10, attr="text")
        app = minimal_app(slots=(slot,))
        _, activity = self.launch(app)
        assert slot.read(activity) is None

    def test_slot_lookup_by_name(self):
        slot = StateSlot("s", StorageKind.BARE_FIELD)
        app = minimal_app(slots=(slot,))
        assert app.slot("s") is slot
        with pytest.raises(KeyError):
            app.slot("missing")


class TestSaveCallbacks:
    def test_on_save_persists_custom_slots(self):
        slot = StateSlot("s", StorageKind.CUSTOM_SAVED)
        app = minimal_app(slots=(slot,), implements_on_save=True)
        system = AndroidSystem(policy=Android10Policy())
        system.launch(app)
        activity = system.foreground_activity(app.package)
        activity.custom_state["s"] = "kept"
        bundle = Bundle()
        app.on_save(activity, bundle)
        assert bundle.get("custom:s") == "kept"

    def test_on_restore_reads_back(self):
        slot = StateSlot("s", StorageKind.CUSTOM_SAVED)
        app = minimal_app(slots=(slot,), implements_on_save=True)
        system = AndroidSystem(policy=Android10Policy())
        system.launch(app)
        activity = system.foreground_activity(app.package)
        bundle = Bundle()
        bundle.put("custom:s", "kept")
        app.on_restore(activity, bundle)
        assert activity.custom_state["s"] == "kept"

    def test_on_save_skips_unset_slots(self):
        slot = StateSlot("s", StorageKind.CUSTOM_SAVED)
        app = minimal_app(slots=(slot,), implements_on_save=True)
        system = AndroidSystem(policy=Android10Policy())
        system.launch(app)
        activity = system.foreground_activity(app.package)
        bundle = Bundle()
        app.on_save(activity, bundle)
        assert bundle.is_empty()


class TestHelpers:
    def test_filler_views_have_consecutive_ids(self):
        views = filler_views(3, start_id=200)
        assert [v.view_id for v in views] == [200, 201, 202]

    def test_simple_layout_wraps_in_container(self):
        layout = simple_layout("main", [ViewSpec("TextView", view_id=9)])
        assert layout.roots[0].view_type == "ViewGroup"
        assert layout.roots[0].children[0].view_id == 9

    def test_two_orientation_resources_share_ids(self):
        from repro.android.res import DEFAULT_LANDSCAPE, DEFAULT_PORTRAIT

        table = two_orientation_resources(
            "main", [ViewSpec("TextView", view_id=9)]
        )
        port = table.resolve_layout("main", DEFAULT_PORTRAIT)
        land = table.resolve_layout("main", DEFAULT_LANDSCAPE)
        assert port is not land
        assert port.roots[0].children[0].view_id == 9
        assert land.roots[0].children[0].view_id == 9

    def test_view_count_counts_decor(self):
        app = minimal_app()
        assert app.view_count() == 3  # decor + container + text

    def test_on_create_charges_logic_cost(self):
        app = minimal_app(logic_cost_ms=25.0)
        system = AndroidSystem(policy=Android10Policy())
        system.launch(app)
        logic = [
            i for i in system.ctx.recorder.busy
            if i.label == f"app-logic:{app.package}"
        ]
        assert logic and logic[0].duration_ms == 25.0
