"""Corpus validation: every generated app spec must be self-consistent."""

import pytest

from repro.android.views.inflate import ViewSpec
from repro.apps import make_benchmark_app
from repro.apps.appset27 import build_appset27
from repro.apps.dsl import AppSpec, AsyncScript, StateSlot, StorageKind, \
    two_orientation_resources
from repro.apps.top100 import build_top100
from repro.harness.experiments.ext_fragments import build_fragment_app
from repro.harness.experiments.ext_robustness import storm_app
from repro.harness.experiments.fig12 import build_table4_apps


def test_appset27_validates():
    for app in build_appset27():
        assert app.validate() == [], app.package


def test_top100_validates():
    for app in build_top100():
        assert app.validate() == [], app.package


def test_benchmark_apps_validate():
    for n in (1, 4, 32):
        assert make_benchmark_app(n).validate() == []


def test_table4_apps_validate():
    for app in build_table4_apps():
        assert app.validate() == [], app.package


def test_misc_experiment_apps_validate():
    assert storm_app().validate() == []
    assert build_fragment_app(0, 2).validate() == []


class TestValidatorCatchesMistakes:
    def _base(self, **kwargs):
        return AppSpec(
            package="bad.app", label="b",
            resources=two_orientation_resources(
                "main", [ViewSpec("TextView", view_id=10)]
            ),
            **kwargs,
        )

    def test_slot_referencing_missing_view(self):
        app = self._base(
            slots=(StateSlot("s", StorageKind.VIEW_ATTR,
                             view_id=999, attr="text"),),
        )
        assert any("999" in p for p in app.validate())

    def test_async_update_referencing_missing_view(self):
        app = self._base(
            async_script=AsyncScript("bg", 1_000.0, ((999, "text", "x"),)),
        )
        assert any("999" in p for p in app.validate())

    def test_duplicate_view_ids(self):
        app = AppSpec(
            package="dup.app", label="d",
            resources=two_orientation_resources(
                "main",
                [ViewSpec("TextView", view_id=10),
                 ViewSpec("TextView", view_id=10)],
            ),
        )
        assert any("duplicate" in p for p in app.validate())

    def test_self_handled_with_issue_class(self):
        from repro.apps.dsl import IssueKind

        app = self._base(handles_config_changes=True,
                         issue=IssueKind.VIEW_STATE_LOSS)
        assert any("self-handling" in p for p in app.validate())

    def test_missing_layout(self):
        from repro.android.res import ResourceTable

        app = AppSpec(package="empty.app", label="e",
                      resources=ResourceTable())
        assert any("missing" in p for p in app.validate())

    def test_bare_field_slots_are_layout_independent(self):
        app = self._base(slots=(StateSlot("s", StorageKind.BARE_FIELD),))
        assert app.validate() == []
