"""Unit tests for the stock Android-10 restart policy."""

import pytest

from repro import Android10Policy, AndroidSystem
from repro.android.app.lifecycle import LifecycleState
from repro.android.views.inflate import ViewSpec
from repro.apps import make_benchmark_app
from repro.apps.benchmark import IMAGE_ID_BASE
from repro.apps.dsl import AppSpec, two_orientation_resources


def booted(app=None):
    system = AndroidSystem(policy=Android10Policy())
    app = app or make_benchmark_app(2)
    system.launch(app)
    return system, app


def test_rotation_relaunches_the_activity():
    system, app = booted()
    old = system.foreground_activity(app.package)
    assert system.rotate() == "relaunch"
    new = system.foreground_activity(app.package)
    assert new is not old
    assert old.destroyed
    assert new.lifecycle is LifecycleState.RESUMED


def test_edittext_state_survives_restart():
    """Auto-saved widgets survive: that is the 11-of-100 harmless class."""
    widgets = [ViewSpec("EditText", view_id=10)]
    app = AppSpec(
        package="edit.app", label="e",
        resources=two_orientation_resources("main", widgets),
    )
    system, app = booted(app)
    fg = system.foreground_activity(app.package)
    fg.require_view(10).set_attr("text", "typed")
    system.rotate()
    fg2 = system.foreground_activity(app.package)
    assert fg2.require_view(10).get_attr("text") == "typed"


def test_non_auto_saved_state_is_lost():
    system, app = booted()
    system.write_slot(app, "first_drawable", "user")
    system.rotate()
    assert system.read_slot(app, "first_drawable") != "user"


def test_self_handling_app_is_not_restarted():
    widgets = [ViewSpec("TextView", view_id=10)]
    app = AppSpec(
        package="self.app", label="s",
        resources=two_orientation_resources("main", widgets),
        handles_config_changes=True,
    )
    system, app = booted(app)
    original = system.foreground_activity(app.package)
    assert system.rotate() == "self-handled"
    assert system.foreground_activity(app.package) is original


def test_only_one_record_ever_exists():
    system, app = booted()
    for _ in range(4):
        system.rotate()
    task = system.atms.stack.find_task(app.package)
    assert len(task.records) == 1


def test_repeated_rotations_have_stable_cost():
    system, app = booted()
    system.rotate()
    system.rotate()
    times = [ms for ms, _ in system.handling_times()]
    assert times[0] == pytest.approx(times[1], rel=0.02)
