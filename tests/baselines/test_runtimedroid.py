"""Unit tests for the RuntimeDroid baseline (Section 5.7)."""

import pytest

from repro import AndroidSystem, RuntimeDroidPolicy
from repro.apps import make_benchmark_app
from repro.baselines.runtimedroid import (
    RUNTIMEDROID_TABLE4,
    deployment_cost_ms,
    patch_time_ms,
)
from repro.sim.costs import DEFAULT_COSTS


def booted(app=None):
    system = AndroidSystem(policy=RuntimeDroidPolicy())
    app = app or make_benchmark_app(4)
    system.launch(app)
    return system, app


def test_inplace_update_keeps_the_instance():
    system, app = booted()
    original = system.foreground_activity(app.package)
    assert system.rotate() == "in-place"
    assert system.foreground_activity(app.package) is original
    assert original.config == system.atms.config


def test_no_crash_on_async_across_change():
    system, app = booted()
    system.start_async(app)
    system.rotate()
    system.run_until_idle()
    assert not system.crashed(app.package)


def test_state_preserved_in_place():
    system, app = booted()
    system.write_slot(app, "first_drawable", "mine")
    system.rotate()
    assert system.read_slot(app, "first_drawable") == "mine"


def test_faster_than_stock_restart():
    from repro import Android10Policy

    system, app = booted()
    system.rotate()
    rd_ms = system.last_handling_ms()

    stock = AndroidSystem(policy=Android10Policy())
    app2 = make_benchmark_app(4)
    stock.launch(app2)
    stock.rotate()
    assert rd_ms < stock.last_handling_ms()


def test_incompatible_app_falls_back_to_restart():
    app = make_benchmark_app(4)
    app.runtimedroid_compatible = False
    system, app = booted(app)
    old = system.foreground_activity(app.package)
    assert system.rotate() == "relaunch"
    assert old.destroyed


class TestTable4Data:
    def test_eight_published_rows(self):
        assert len(RUNTIMEDROID_TABLE4) == 8
        by_app = {e.app: e for e in RUNTIMEDROID_TABLE4}
        assert by_app["Mdapp"].modification_loc == 2077
        assert by_app["VlilleChecker"].modification_loc == 760

    def test_modifications_consistent_with_loc_delta(self):
        for entry in RUNTIMEDROID_TABLE4:
            assert entry.runtimedroid_loc > entry.android10_loc
            assert entry.modification_loc <= entry.runtimedroid_loc


class TestDeploymentModel:
    def test_patch_time_scales_with_app_size(self):
        assert patch_time_ms(DEFAULT_COSTS, 20_000) > patch_time_ms(
            DEFAULT_COSTS, 2_000
        )

    def test_patch_times_land_in_paper_range(self):
        for entry in RUNTIMEDROID_TABLE4:
            ms = patch_time_ms(DEFAULT_COSTS, entry.android10_loc)
            assert 10_000 <= ms <= 165_000

    def test_deployment_cost_shapes(self):
        rchdroid_ms, per_app = deployment_cost_ms(
            DEFAULT_COSTS, [e.android10_loc for e in RUNTIMEDROID_TABLE4]
        )
        assert rchdroid_ms == pytest.approx(92_870.0)
        assert len(per_app) == 8
        # One flash covers any number of apps; patching is per app.
        assert sum(per_app) > rchdroid_ms
