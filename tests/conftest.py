"""Shared fixtures: fresh simulation contexts and booted systems."""

from __future__ import annotations

import pytest

from repro import Android10Policy, AndroidSystem, RCHDroidPolicy
from repro.apps import make_benchmark_app
from repro.sim.context import SimContext


@pytest.fixture
def ctx() -> SimContext:
    return SimContext()


@pytest.fixture
def stock_system() -> AndroidSystem:
    return AndroidSystem(policy=Android10Policy())


@pytest.fixture
def rch_system() -> AndroidSystem:
    return AndroidSystem(policy=RCHDroidPolicy())


@pytest.fixture
def bench_app():
    return make_benchmark_app(num_images=4)
