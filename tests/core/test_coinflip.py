"""Unit tests for coin-flipping activity management (Section 3.4)."""

import pytest

from repro import AndroidSystem, RCHDroidConfig, RCHDroidPolicy
from repro.apps import make_benchmark_app
from repro.apps.benchmark import IMAGE_ID_BASE


def booted(config=None):
    policy = RCHDroidPolicy(config) if config else RCHDroidPolicy()
    system = AndroidSystem(policy=policy)
    app = make_benchmark_app(4)
    system.launch(app)
    return system, app


def test_first_change_is_init_then_flips_forever():
    system, app = booted()
    paths = [system.rotate() for _ in range(5)]
    assert paths == ["init", "flip", "flip", "flip", "flip"]


def test_flip_reuses_the_original_instance():
    system, app = booted()
    original = system.foreground_activity(app.package)
    system.rotate()  # original -> shadow, second instance -> sunny
    second = system.foreground_activity(app.package)
    assert second is not original
    system.rotate()  # flip back
    assert system.foreground_activity(app.package) is original
    system.rotate()  # flip again
    assert system.foreground_activity(app.package) is second


def test_flip_keeps_exactly_two_instances():
    system, app = booted()
    for _ in range(6):
        system.rotate()
    thread = system.atms.thread_of(app.package)
    assert len(thread.activities) == 2
    assert len(system.atms.stack.find_task(app.package).records) == 2


def test_flip_syncs_latest_user_state():
    """State written between flips follows the user across instances."""
    system, app = booted()
    system.rotate()
    system.write_slot(app, "first_drawable", "set-on-second")
    system.rotate()  # back to the original instance
    assert system.read_slot(app, "first_drawable") == "set-on-second"
    system.write_slot(app, "first_drawable", "set-on-first")
    system.rotate()
    assert system.read_slot(app, "first_drawable") == "set-on-first"


def test_flip_applies_new_configuration():
    system, app = booted()
    system.rotate()
    config_after_first = system.atms.config
    system.rotate()
    foreground = system.foreground_activity(app.package)
    assert foreground.config == system.atms.config
    assert foreground.config != config_after_first


def test_flip_is_cheaper_than_init_and_restart():
    system, app = booted()
    system.rotate()
    init_ms = system.last_handling_ms()
    system.rotate()
    flip_ms = system.last_handling_ms()
    assert flip_ms < init_ms


def test_disabled_coin_flip_always_inits():
    system, app = booted(RCHDroidConfig(coin_flip_enabled=False))
    paths = [system.rotate() for _ in range(4)]
    assert paths == ["init", "init", "init", "init"]
    # the single-shadow invariant still holds
    thread = system.atms.thread_of(app.package)
    shadows = [a for a in thread.activities if a.shadow_flag and a.alive]
    assert len(shadows) == 1


def test_flip_counter_recorded():
    system, app = booted()
    system.rotate()
    system.rotate()
    assert system.ctx.recorder.counters["coinflip-hit"] == 1
    assert system.ctx.recorder.counters["coinflip-miss"] == 1
    assert system.ctx.recorder.counters["instance-flips"] == 1
