"""Unit tests for the threshold GC (Section 3.5, Algorithm 1)."""

import pytest

from repro import AndroidSystem, GcThresholds, RCHDroidConfig, RCHDroidPolicy
from repro.apps import make_benchmark_app
from repro.core.gc import GcDecision, ShadowGarbageCollector


def booted(thresholds=None, gc_period_ms=5_000.0):
    config = RCHDroidConfig(
        thresholds=thresholds or GcThresholds(), gc_period_ms=gc_period_ms
    )
    policy = RCHDroidPolicy(config)
    system = AndroidSystem(policy=policy)
    app = make_benchmark_app(4)
    system.launch(app)
    thread = system.atms.thread_of(app.package)
    return system, app, policy, thread


class TestAlgorithm1:
    def test_no_shadow_decision(self):
        system, _, policy, thread = booted()
        decision = policy.gc.check(thread)
        assert decision is GcDecision.NO_SHADOW

    def test_recent_shadow_is_protected(self):
        system, _, policy, thread = booted()
        system.rotate()
        decision = policy.gc.check(thread)
        assert decision is GcDecision.TOO_RECENT
        assert thread.shadow_activity is not None

    def test_frequent_shadow_is_protected(self):
        thresholds = GcThresholds(thresh_t_ms=1_000.0, thresh_f=4,
                                  frequency_window_ms=60_000.0)
        system, _, policy, thread = booted(thresholds)
        for _ in range(5):  # five shadow entries within the window
            system.rotate()
            system.run_for(300.0)
        system.run_for(2_000.0)  # exceed THRESH_T
        decision = policy.gc._decide(thread)
        assert decision is GcDecision.TOO_FREQUENT

    def test_old_infrequent_shadow_is_collected(self):
        thresholds = GcThresholds(thresh_t_ms=5_000.0, thresh_f=4,
                                  frequency_window_ms=10_000.0)
        system, _, policy, thread = booted(thresholds)
        system.rotate()
        system.run_for(20_000.0)  # shadow aged, frequency window empty
        assert thread.shadow_activity is None  # periodic tick collected it
        assert policy.gc.collected_count >= 1

    def test_both_conditions_must_hold(self):
        """Old but frequent -> kept; fresh but infrequent -> kept."""
        thresholds = GcThresholds(thresh_t_ms=8_000.0, thresh_f=4,
                                  frequency_window_ms=60_000.0)
        system, _, policy, thread = booted(thresholds)
        for _ in range(5):
            system.rotate()
            system.run_for(200.0)
        system.run_for(10_000.0)  # old (>8 s) but 5 entries in the minute
        assert thread.shadow_activity is not None


class TestGcEffects:
    def test_collection_releases_memory(self):
        thresholds = GcThresholds(thresh_t_ms=3_000.0, thresh_f=4,
                                  frequency_window_ms=5_000.0)
        system, app, policy, thread = booted(thresholds)
        system.rotate()
        with_shadow = system.memory_of(app.package)
        system.run_for(20_000.0)
        assert thread.shadow_activity is None
        assert system.memory_of(app.package) < with_shadow

    def test_collection_removes_record_so_next_change_inits(self):
        thresholds = GcThresholds(thresh_t_ms=3_000.0, thresh_f=4,
                                  frequency_window_ms=5_000.0)
        system, app, policy, thread = booted(thresholds)
        assert system.rotate() == "init"
        system.run_for(20_000.0)  # shadow collected
        assert system.rotate() == "init"  # no flip candidate left
        task = system.atms.stack.find_task(app.package)
        assert len(task.records) == 2  # old record was dropped

    def test_gc_never_collects_foreground(self):
        thresholds = GcThresholds(thresh_t_ms=100.0, thresh_f=1,
                                  frequency_window_ms=1_000.0)
        system, app, policy, thread = booted(thresholds)
        system.rotate()
        system.run_for(60_000.0)
        foreground = system.foreground_activity(app.package)
        assert foreground is not None
        assert foreground.alive

    def test_gc_tick_stops_after_collection(self):
        thresholds = GcThresholds(thresh_t_ms=1_000.0, thresh_f=4,
                                  frequency_window_ms=2_000.0)
        system, app, policy, thread = booted(thresholds, gc_period_ms=1_000.0)
        system.rotate()
        system.run_for(30_000.0)
        checks_after_collection = len(policy.gc.decisions)
        system.run_for(30_000.0)
        # no shadow -> the periodic tick is not rescheduled
        assert len(policy.gc.decisions) == checks_after_collection


class TestForegroundSwitchRelease:
    def test_shadow_released_when_foreground_switches(self):
        system, app, policy, thread = booted()
        system.rotate()
        assert thread.shadow_activity is not None
        other = make_benchmark_app(1, package="bench.other")
        system.launch(other)
        assert thread.shadow_activity is None
        task = system.atms.stack.find_task(app.package)
        assert len(task.records) == 1
