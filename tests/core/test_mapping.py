"""Unit tests for the essence-based view mapping (Section 3.3)."""

import pytest

from repro import Android10Policy, AndroidSystem
from repro.android.views.inflate import ViewSpec
from repro.apps.dsl import AppSpec, simple_layout, two_orientation_resources
from repro.core.mapping import build_essence_mapping


def app_with_widgets(widgets, package="map.test"):
    return AppSpec(
        package=package,
        label=package,
        resources=two_orientation_resources("main", widgets),
    )


def launch_two(widgets_a, widgets_b=None):
    """Launch two instances (in two systems) to map across."""
    system = AndroidSystem(policy=Android10Policy())
    app_a = app_with_widgets(widgets_a, "map.a")
    a = system.launch(app_a).instance
    app_b = app_with_widgets(
        widgets_b if widgets_b is not None else widgets_a, "map.b"
    )
    b = system.launch(app_b).instance
    return system, a, b


def test_identical_trees_map_completely():
    widgets = [ViewSpec("TextView", view_id=i) for i in range(10, 15)]
    system, shadow, sunny = launch_two(widgets)
    mapping = build_essence_mapping(system.ctx, shadow, sunny)
    assert mapping.complete
    assert mapping.mapped == 6  # container + 5 TextViews
    assert mapping.unmapped_id_views == 0


def test_peers_are_planted_both_ways():
    widgets = [ViewSpec("TextView", view_id=10)]
    system, shadow, sunny = launch_two(widgets)
    build_essence_mapping(system.ctx, shadow, sunny)
    assert shadow.find_view(10).sunny_peer is sunny.find_view(10)
    assert sunny.find_view(10).sunny_peer is shadow.find_view(10)


def test_idless_views_stay_unmapped():
    widgets = [ViewSpec("TextView", view_id=10),
               ViewSpec("TextView", dynamic=True)]
    system, shadow, sunny = launch_two(widgets)
    mapping = build_essence_mapping(system.ctx, shadow, sunny)
    assert mapping.complete  # id-bearing views all mapped
    dynamic = [v for v in shadow.decor.iter_tree() if v.view_id is None
               and v.view_type == "TextView"]
    assert dynamic and all(v.sunny_peer is None for v in dynamic)


def test_missing_counterpart_reported():
    widgets_shadow = [ViewSpec("TextView", view_id=10),
                      ViewSpec("TextView", view_id=11)]
    widgets_sunny = [ViewSpec("TextView", view_id=10)]
    system, shadow, sunny = launch_two(widgets_shadow, widgets_sunny)
    mapping = build_essence_mapping(system.ctx, shadow, sunny)
    assert not mapping.complete
    assert mapping.unmapped_id_views == 1
    assert shadow.find_view(11).sunny_peer is None


def test_mapping_cost_is_linear_in_views():
    small = [ViewSpec("TextView", view_id=100 + i) for i in range(2)]
    big = [ViewSpec("TextView", view_id=100 + i) for i in range(40)]
    system_s, shadow_s, sunny_s = launch_two(small)
    t0 = system_s.now_ms
    build_essence_mapping(system_s.ctx, shadow_s, sunny_s)
    cost_small = system_s.now_ms - t0

    system_b, shadow_b, sunny_b = launch_two(big)
    t1 = system_b.now_ms
    build_essence_mapping(system_b.ctx, shadow_b, sunny_b)
    cost_big = system_b.now_ms - t1
    assert cost_big > cost_small
    # linear: cost grows by ~per-view constants times the extra views
    per_view = (
        system_b.ctx.costs.mapping_build_per_view_ms
        + system_b.ctx.costs.mapping_pointer_per_view_ms
    )
    assert cost_big - cost_small == pytest.approx(38 * per_view, rel=0.05)


def test_mapping_records_event():
    widgets = [ViewSpec("TextView", view_id=10)]
    system, shadow, sunny = launch_two(widgets)
    build_essence_mapping(system.ctx, shadow, sunny)
    assert system.ctx.recorder.events_of_kind("mapping-built")
