"""Unit tests for the lazy-migration engine (Section 3.3, Table 1)."""

import pytest

from repro import AndroidSystem, RCHDroidPolicy
from repro.android.views.inflate import ViewSpec
from repro.apps.dsl import (
    AppSpec,
    AsyncScript,
    two_orientation_resources,
)
from repro.core.migration import MigrationEngine


def rch_system_with(widgets, async_updates, duration_ms=2_000.0):
    policy = RCHDroidPolicy()
    system = AndroidSystem(policy=policy)
    app = AppSpec(
        package="mig.test",
        label="mig",
        resources=two_orientation_resources("main", widgets),
        async_script=AsyncScript("bg", duration_ms, tuple(async_updates)),
    )
    system.launch(app)
    return system, policy, app


class TestEndToEndMigration:
    def test_text_update_migrates_to_sunny(self):
        system, policy, app = rch_system_with(
            [ViewSpec("TextView", view_id=10, attrs={"text": "old"})],
            [(10, "text", "fresh")],
        )
        system.start_async(app)
        system.rotate()
        system.run_until_idle()
        sunny = system.foreground_activity(app.package)
        assert sunny.require_view(10).get_attr("text") == "fresh"

    def test_all_table1_types_migrate(self):
        widgets = [
            ViewSpec("TextView", view_id=10),
            ViewSpec("ImageView", view_id=11),
            ViewSpec("ListView", view_id=12),
            ViewSpec("VideoView", view_id=13),
            ViewSpec("ProgressBar", view_id=14),
        ]
        updates = [
            (10, "text", "t"),
            (11, "drawable", "d"),
            (12, "checked_item", 3),
            (13, "video_uri", "u"),
            (14, "progress", 50),
        ]
        system, policy, app = rch_system_with(widgets, updates)
        system.start_async(app)
        system.rotate()
        system.run_until_idle()
        sunny = system.foreground_activity(app.package)
        assert sunny.require_view(10).get_attr("text") == "t"
        assert sunny.require_view(11).get_attr("drawable") == "d"
        assert sunny.require_view(12).get_attr("checked_item") == 3
        assert sunny.require_view(13).get_attr("video_uri") == "u"
        assert sunny.require_view(14).get_attr("progress") == 50

    def test_unmapped_dynamic_view_is_counted_as_miss(self):
        widgets = [
            ViewSpec("TextView", view_id=10),
            ViewSpec("TextView", dynamic=True),
        ]
        system, policy, app = rch_system_with(widgets, [(10, "text", "x")])
        system.start_async(app)
        system.rotate()
        # mutate the id-less view directly on the shadow instance
        thread = system.atms.thread_of(app.package)
        shadow = thread.shadow_activity
        dynamic = [
            v for v in shadow.decor.iter_tree()
            if v.view_id is None and v.view_type == "TextView"
        ][0]
        dynamic.set_attr("text", "lost")
        system.run_until_idle()
        engine = policy.engine_for(app.package)
        assert engine.total_missed_views >= 1
        assert system.ctx.recorder.counters["migration-miss"] >= 1

    def test_no_migration_without_rotation(self):
        system, policy, app = rch_system_with(
            [ViewSpec("TextView", view_id=10)], [(10, "text", "x")]
        )
        system.start_async(app)
        system.run_until_idle()
        engine = policy.engine_for(app.package)
        assert engine.batches == []


class TestBatching:
    def test_one_batch_per_async_return(self):
        widgets = [ViewSpec("ImageView", view_id=100 + i) for i in range(4)]
        updates = [(100 + i, "drawable", f"new-{i}") for i in range(4)]
        system, policy, app = rch_system_with(widgets, updates)
        system.start_async(app)
        system.rotate()
        system.run_until_idle()
        engine = policy.engine_for(app.package)
        assert len(engine.batches) == 1
        assert engine.batches[0].migrated_views == 4

    def test_batch_cost_includes_dispatch_base(self):
        system, policy, app = rch_system_with(
            [ViewSpec("TextView", view_id=10)], [(10, "text", "x")]
        )
        system.start_async(app)
        system.rotate()
        system.run_until_idle()
        costs = system.ctx.costs
        engine = policy.engine_for(app.package)
        assert engine.last_batch_cost_ms() == pytest.approx(
            costs.migrate_dispatch_base_ms + costs.migrate_per_view_ms
        )

    def test_two_async_returns_make_two_batches(self):
        widgets = [ViewSpec("TextView", view_id=10)]
        system, policy, app = rch_system_with(widgets, [(10, "text", "a")])
        second = AsyncScript("bg2", 4_000.0, ((10, "text", "b"),))
        system.start_async(app)
        system.start_async(app, second)
        system.rotate()
        system.run_until_idle()
        engine = policy.engine_for(app.package)
        assert len(engine.batches) == 2


class TestMigrateAttributes:
    def test_copies_only_declared_attrs(self):
        from repro.android.views.widgets import TextView
        from repro.sim.context import SimContext

        ctx = SimContext()
        source = TextView(ctx, view_id=1)
        target = TextView(ctx, view_id=1)
        source.set_attr("text", "hello", silent=True)
        source.set_attr("private_tag", "secret", silent=True)
        copied = MigrationEngine.migrate_attributes(source, target)
        assert copied == 1
        assert target.get_attr("text") == "hello"
        assert target.get_attr("private_tag") is None

    def test_unset_attrs_are_not_copied(self):
        from repro.android.views.widgets import ProgressBar
        from repro.sim.context import SimContext

        ctx = SimContext()
        source = ProgressBar(ctx, view_id=1)
        target = ProgressBar(ctx, view_id=1)
        assert MigrationEngine.migrate_attributes(source, target) == 0
