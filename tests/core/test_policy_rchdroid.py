"""Unit tests for the RCHDroid policy orchestration (Fig. 3 flow)."""

import pytest

from repro import AndroidSystem, RCHDroidConfig, RCHDroidPolicy
from repro.android.app.lifecycle import LifecycleState
from repro.android.views.inflate import ViewSpec
from repro.apps import make_benchmark_app
from repro.apps.benchmark import IMAGE_ID_BASE
from repro.apps.dsl import AppSpec, two_orientation_resources


def booted(app=None, config=None):
    policy = RCHDroidPolicy(config) if config else RCHDroidPolicy()
    system = AndroidSystem(policy=policy)
    app = app or make_benchmark_app(4)
    system.launch(app)
    return system, app, policy


class TestInitPath:
    def test_old_instance_becomes_shadow(self):
        system, app, _ = booted()
        old = system.foreground_activity(app.package)
        system.rotate()
        assert old.lifecycle is LifecycleState.SHADOW

    def test_new_instance_is_sunny_with_new_config(self):
        system, app, _ = booted()
        old_config = system.atms.config
        system.rotate()
        sunny = system.foreground_activity(app.package)
        assert sunny.lifecycle is LifecycleState.SUNNY
        assert sunny.config == system.atms.config != old_config

    def test_mapping_built_once_per_init(self):
        system, app, policy = booted()
        system.rotate()
        assert len(policy.mappings) == 1
        system.rotate()  # flip: no new mapping
        assert len(policy.mappings) == 1

    def test_view_state_transferred_via_snapshot(self):
        system, app, _ = booted()
        system.write_slot(app, "first_drawable", "mine")
        system.rotate()
        assert system.read_slot(app, "first_drawable") == "mine"

    def test_bare_fields_are_not_transferred(self):
        system, app, _ = booted()
        old = system.foreground_activity(app.package)
        old.fields["secret"] = 42
        system.rotate()
        sunny = system.foreground_activity(app.package)
        assert "secret" not in sunny.fields

    def test_custom_state_transferred_when_app_saves(self):
        widgets = [ViewSpec("TextView", view_id=10)]
        from repro.apps.dsl import StateSlot, StorageKind

        app = AppSpec(
            package="custom.save",
            label="c",
            resources=two_orientation_resources("main", widgets),
            implements_on_save=True,
            slots=(StateSlot("note", StorageKind.CUSTOM_SAVED),),
        )
        system, app, _ = booted(app)
        system.write_slot(app, "note", "remember me")
        system.rotate()
        assert system.read_slot(app, "note") == "remember me"


class TestSelfHandledApps:
    def test_self_handling_app_is_delivered_not_shadowed(self):
        widgets = [ViewSpec("TextView", view_id=10)]
        app = AppSpec(
            package="selfhandled",
            label="s",
            resources=two_orientation_resources("main", widgets),
            handles_config_changes=True,
        )
        system, app, policy = booted(app)
        original = system.foreground_activity(app.package)
        assert system.rotate() == "self-handled"
        assert system.foreground_activity(app.package) is original
        assert original.lifecycle is LifecycleState.RESUMED
        assert original.config == system.atms.config


class TestHandlingLatencies:
    def test_paths_recorded_in_latency_detail(self):
        system, app, _ = booted()
        system.rotate()
        system.rotate()
        assert [path for _, path in system.handling_times()] == ["init", "flip"]

    def test_noop_config_change_not_measured(self):
        system, app, _ = booted()
        result = system.atms.update_configuration(system.atms.config)
        assert result == "none"
        assert system.handling_times() == []


class TestAblationSwitches:
    def test_lazy_migration_disabled_leaves_sunny_stale(self):
        from repro.apps.dsl import AsyncScript

        widgets = [ViewSpec("TextView", view_id=10, attrs={"text": "old"})]
        app = AppSpec(
            package="nomig",
            label="n",
            resources=two_orientation_resources("main", widgets),
            async_script=AsyncScript("bg", 2_000.0, ((10, "text", "new"),)),
        )
        system, app, policy = booted(
            app, RCHDroidConfig(lazy_migration_enabled=False)
        )
        system.start_async(app)
        system.rotate()
        system.run_until_idle()
        assert not system.crashed(app.package)  # shadow still absorbs it
        sunny = system.foreground_activity(app.package)
        assert sunny.require_view(10).get_attr("text") == "old"  # stale!

    def test_coin_flip_disabled_still_preserves_state(self):
        system, app, _ = booted(config=RCHDroidConfig(coin_flip_enabled=False))
        system.write_slot(app, "first_drawable", "keep")
        system.rotate()
        system.rotate()
        assert system.read_slot(app, "first_drawable") == "keep"
