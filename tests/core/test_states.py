"""Unit tests for shadow/sunny state transitions (Section 3.2)."""

import pytest

from repro import Android10Policy, AndroidSystem, RCHDroidPolicy
from repro.android.app.lifecycle import LifecycleState
from repro.apps import make_benchmark_app
from repro.apps.benchmark import IMAGE_ID_BASE
from repro.core import states


def launch():
    system = AndroidSystem(policy=Android10Policy())
    app = make_benchmark_app(2)
    record = system.launch(app)
    thread = system.atms.thread_of(app.package)
    return system, app, record.instance, thread


class TestShadowTransition:
    def test_shadow_snapshots_full_state(self):
        system, _, activity, thread = launch()
        activity.require_view(IMAGE_ID_BASE).set_attr("drawable", "user")
        snapshot = states.shadow_activity(system.ctx, thread, activity)
        assert (
            snapshot.get_bundle(f"view:{IMAGE_ID_BASE}").get("drawable")
            == "user"
        )

    def test_shadow_keeps_views_alive(self):
        system, _, activity, thread = launch()
        states.shadow_activity(system.ctx, thread, activity)
        assert activity.lifecycle is LifecycleState.SHADOW
        assert all(v.alive for v in activity.decor.iter_tree())

    def test_shadow_consumes_transition_cost(self):
        system, _, activity, thread = launch()
        before = system.now_ms
        states.shadow_activity(system.ctx, thread, activity)
        assert system.now_ms - before >= system.ctx.costs.shadow_transition_ms

    def test_shadow_updates_thread_bookkeeping(self):
        system, _, activity, thread = launch()
        states.shadow_activity(system.ctx, thread, activity)
        assert thread.shadow_activity is activity

    def test_shadow_records_event(self):
        system, _, activity, thread = launch()
        states.shadow_activity(system.ctx, thread, activity)
        assert system.ctx.recorder.events_of_kind("enter-shadow")


class TestSunnyTransition:
    def test_sunny_from_shadow(self):
        system, _, activity, thread = launch()
        states.shadow_activity(system.ctx, thread, activity)
        states.sunny_activity(system.ctx, activity)
        assert activity.lifecycle is LifecycleState.SUNNY

    def test_sunny_charges_resume_cost(self):
        system, _, activity, thread = launch()
        states.shadow_activity(system.ctx, thread, activity)
        before = system.now_ms
        states.sunny_activity(system.ctx, activity)
        assert system.now_ms - before == pytest.approx(
            system.ctx.costs.activity_resume_ms
        )


class TestSingleShadowInvariant:
    def test_holds_after_many_rotations(self):
        system = AndroidSystem(policy=RCHDroidPolicy())
        app = make_benchmark_app(2)
        system.launch(app)
        threads = list(system.atms.threads.values())
        for _ in range(6):
            system.rotate()
            system.run_for(500)
            states.check_single_shadow_invariant(threads)

    def test_detects_violation(self):
        system, _, activity, thread = launch()
        thread.shadow_activity = activity  # pointer without SHADOW state
        with pytest.raises(AssertionError):
            states.check_single_shadow_invariant([thread])
