"""run_batch / run_policy_matrix: ordering, parallelism, cache wiring."""

import json

import pytest

from repro.apps.appset27 import build_appset27
from repro.engine import (
    KIND_ISSUE,
    EngineConfig,
    ResultCache,
    RunRequest,
    configure,
    encode_result,
    execute_request,
    restore,
    run_batch,
    run_policy_matrix,
)
from repro.errors import EngineError
from repro.harness.runner import measure_handling, run_issue_scenario
from repro.core.policy import RCHDroidPolicy


def _encoded(results):
    return [json.dumps(encode_result(r), sort_keys=True) for r in results]


def _requests(count=4):
    apps = build_appset27()[:count]
    return [RunRequest.handling("rchdroid", app) for app in apps]


class TestRunRequest:
    def test_unknown_policy_rejected(self):
        with pytest.raises(EngineError):
            RunRequest.handling("cyanogenmod", build_appset27()[0])

    def test_unknown_kind_rejected(self):
        with pytest.raises(EngineError):
            RunRequest("teleport", "rchdroid", build_appset27()[0])

    def test_kwargs_affect_the_key(self):
        app = build_appset27()[0]
        assert (RunRequest.handling("rchdroid", app, rotations=2).cache_key()
                != RunRequest.handling("rchdroid", app).cache_key())

    def test_seed_affects_the_key(self):
        app = build_appset27()[0]
        assert (RunRequest.handling("rchdroid", app, seed=1).cache_key()
                != RunRequest.handling("rchdroid", app, seed=2).cache_key())

    def test_key_is_memoised(self):
        request = _requests(1)[0]
        assert request.cache_key() is request.cache_key()


class TestSerialEquivalence:
    def test_matches_direct_runner_calls(self):
        app = build_appset27()[0]
        direct = measure_handling(RCHDroidPolicy, app)
        batched = run_batch([RunRequest.handling("rchdroid", app)])[0]
        assert batched == direct

    def test_issue_kind_matches_direct(self):
        app = build_appset27()[0]
        direct = run_issue_scenario(RCHDroidPolicy, app)
        batched = run_batch([RunRequest.issue("rchdroid", app)])[0]
        assert batched == direct

    def test_results_align_with_submission_order(self):
        requests = _requests(5)
        results = run_batch(requests)
        for request, result in zip(requests, results):
            assert result.package == request.app.package


class TestParallel:
    def test_two_jobs_byte_identical_to_serial(self):
        requests = _requests(6)
        assert (_encoded(run_batch(requests, jobs=2))
                == _encoded(run_batch(requests, jobs=1)))

    def test_more_jobs_than_requests(self):
        requests = _requests(2)
        assert (_encoded(run_batch(requests, jobs=8))
                == _encoded(run_batch(requests, jobs=1)))

    def test_empty_batch(self):
        assert run_batch([], jobs=4) == []


class TestCacheWiring:
    def test_second_batch_is_all_hits(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        requests = _requests(3)
        first = run_batch(requests, cache=cache)
        assert cache.stats.misses == 3 and cache.stats.stores == 3
        second = run_batch(requests, cache=cache)
        assert cache.stats.memory_hits == 3
        assert _encoded(first) == _encoded(second)

    def test_disk_round_trip_is_byte_identical(self, tmp_path):
        requests = _requests(3)
        golden = _encoded(run_batch(requests))
        run_batch(requests, cache=ResultCache(root=tmp_path))
        fresh = ResultCache(root=tmp_path)
        assert _encoded(run_batch(requests, cache=fresh)) == golden
        assert fresh.stats.disk_hits == 3

    def test_partial_hits_fill_only_the_gaps(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        requests = _requests(4)
        run_batch(requests[:2], cache=cache)
        results = run_batch(requests, cache=cache)
        assert cache.stats.memory_hits == 2
        assert cache.stats.stores == 4
        assert [r.package for r in results] \
            == [request.app.package for request in requests]


class TestConfigure:
    def test_configure_sets_defaults_and_restores(self, tmp_path):
        previous = configure(jobs=1, cache=ResultCache(root=tmp_path))
        try:
            requests = _requests(2)
            run_batch(requests)  # picks the configured cache up
            hit, _ = _resolve_default_cache().get(requests[0].cache_key())
            assert hit
        finally:
            restore(previous)

    def test_restore_returns_prior_config(self):
        before = configure()
        try:
            configure(jobs=7)
            middle = configure()
            assert middle.jobs == 7
        finally:
            restore(before)
        assert configure().jobs == before.jobs
        restore(before)

    def test_config_dataclass_defaults(self):
        config = EngineConfig()
        assert config.jobs == "auto"
        assert config.cache is False
        assert config.snapshots is True
        assert config.verify_forks is False


def _resolve_default_cache():
    from repro.engine.batch import _resolve_cache

    return _resolve_cache(None)


class TestPolicyMatrix:
    def test_one_dict_per_app_in_order(self):
        apps = build_appset27()[:3]
        matrix = run_policy_matrix(apps, ["android10", "rchdroid"])
        assert len(matrix) == 3
        for app, cell in zip(apps, matrix):
            assert set(cell) == {"android10", "rchdroid"}
            assert cell["android10"].package == app.package
            assert cell["android10"].policy == "android10"
            assert cell["rchdroid"].policy == "rchdroid"

    def test_issue_matrix(self):
        apps = build_appset27()[:2]
        matrix = run_policy_matrix(apps, ["android10"], kind=KIND_ISSUE)
        assert all(cell["android10"].package == app.package
                   for app, cell in zip(apps, matrix))

    def test_matrix_with_cache_is_identical(self, tmp_path):
        apps = build_appset27()[:2]
        plain = run_policy_matrix(apps, ["android10", "rchdroid"])
        cached = run_policy_matrix(apps, ["android10", "rchdroid"],
                                   cache=ResultCache(root=tmp_path))
        for a, b in zip(plain, cached):
            assert _encoded(a.values()) == _encoded(b.values())


class TestExecuteRequest:
    def test_runs_in_this_process(self):
        request = RunRequest.handling("android10", build_appset27()[0])
        result = execute_request(request)
        assert result.policy == "android10"
