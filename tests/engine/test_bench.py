"""bench-engine: report structure, acceptance checks, CLI parsing."""

import json

from repro.engine import bench


def _snapshot_section(*, identical=True):
    return {
        "probes": {
            "runs": 48,
            "seconds": {"serial": 1.0, "forked": 0.4,
                        "forked_verified": 0.6},
            "speedup_vs_serial": {"forked": 2.5, "forked_verified": 1.67},
            "identical_to_serial": {"forked": identical,
                                    "forked_verified": identical},
        }
    }


def _report(*, identical=True, warm_memory=0.01, warm_disk=0.02, serial=1.0):
    return {
        "bench": "repro.engine",
        "host": {"cpu_count": 4, "python": "3.11", "platform": "test"},
        "jobs": 4,
        "experiments": {
            "fig14": {
                "runs": 118,
                "seconds": {
                    "serial": serial,
                    "parallel": 0.6,
                    "cached_cold": 1.1,
                    "cached_warm_memory": warm_memory,
                    "cached_warm_disk": warm_disk,
                },
                "speedup_vs_serial": {
                    "parallel": 1.67,
                    "cached_warm_memory": 100.0,
                    "cached_warm_disk": 50.0,
                },
                "cache_stats": {},
                "identical_to_serial": {
                    "parallel": identical,
                    "cached_cold": identical,
                    "cached_warm_memory": identical,
                    "cached_warm_disk": identical,
                },
            }
        },
    }


class TestCheckReport:
    def test_good_report_passes(self):
        assert bench.check_report(_report()) == []

    def test_divergent_results_fail(self):
        failures = bench.check_report(_report(identical=False))
        assert any("differ from serial" in failure for failure in failures)

    def test_slow_warm_cache_fails(self):
        failures = bench.check_report(_report(warm_memory=2.0))
        assert any("not faster than" in failure for failure in failures)

    def test_slow_disk_tier_fails(self):
        failures = bench.check_report(_report(warm_disk=2.0))
        assert failures

    def test_divergent_forked_results_fail(self):
        report = _report()
        report["snapshot"] = _snapshot_section(identical=False)
        failures = bench.check_report(report)
        assert any("snapshot/probes" in failure for failure in failures)

    def test_identical_forked_results_pass(self):
        report = _report()
        report["snapshot"] = _snapshot_section()
        assert bench.check_report(report) == []


class TestReportOutput:
    def test_write_report_is_valid_json(self, tmp_path):
        path = tmp_path / "BENCH_engine.json"
        bench.write_report(_report(), str(path))
        loaded = json.loads(path.read_text())
        assert loaded["experiments"]["fig14"]["runs"] == 118

    def test_format_report_mentions_host_and_identity(self):
        text = bench.format_report(_report())
        assert "cpus=4" in text
        assert "byte-identical to serial: yes" in text
        assert "fig14" in text

    def test_format_report_flags_divergence(self):
        text = bench.format_report(_report(identical=False))
        assert "byte-identical to serial: NO" in text

    def test_format_report_covers_the_snapshot_mode(self):
        report = _report()
        report["snapshot"] = _snapshot_section()
        text = bench.format_report(report)
        assert "snapshot/probes" in text
        assert "2.5x" in text


class TestRequestBuilders:
    def test_fig14_builder_covers_both_policies(self):
        requests = bench._REQUEST_BUILDERS["fig14"]()
        assert len(requests) == 118
        assert {request.policy for request in requests} \
            == {"android10", "rchdroid"}

    def test_table5_builder_covers_the_full_corpus(self):
        requests = bench._REQUEST_BUILDERS["table5"]()
        assert len(requests) == 200
        assert {request.kind for request in requests} == {"issue"}

    def test_probes_builder_is_two_prefix_groups(self):
        requests = bench._REQUEST_BUILDERS["probes"]()
        assert {request.kind for request in requests} == {"probe"}
        prefixes = {request.prefix_key() for request in requests}
        assert len(prefixes) == 2
        assert len({request.cache_key() for request in requests}) \
            == len(requests)


def _phases_section(*, identical=True, stock_asym=7.5, fixed_asym=8.4,
                    stock_storm_crash=0.52, stock_calm_crash=0.12,
                    fixed_storm_crash=0.0):
    def rows(per_device_scale, stock_crash):
        return {
            "android10": {
                "handling_events": 800, "handling_mean_ms": 150.0,
                "handling_ms_per_device": round(
                    280.0 * (stock_asym if per_device_scale else 1.0), 1),
                "crash_rate": stock_crash, "data_loss_rate": 0.98,
            },
            "rchdroid": {
                "handling_events": 950, "handling_mean_ms": 92.0,
                "handling_ms_per_device": round(
                    175.0 * (fixed_asym if per_device_scale else 1.0), 1),
                "crash_rate": (fixed_storm_crash if per_device_scale
                               else 0.0),
                "data_loss_rate": 0.33,
            },
        }

    storm = rows(True, stock_storm_crash)
    idle = rows(False, stock_calm_crash)
    return {
        "devices": 180,
        "storm_plan": "rotation-storm",
        "idle_plan": "calm",
        "plans": {"rotation-storm": storm, "calm": idle},
        "identical_across_jobs": {"rotation-storm": identical,
                                  "calm": identical},
        "asymmetry": {
            policy: round(
                storm[policy]["handling_ms_per_device"]
                / idle[policy]["handling_ms_per_device"], 2)
            for policy in storm
        },
    }


def _fleet_report(*, identical=True, spawn_cold=0.4, spawn_forked=0.1,
                  delta_bytes=900, rss_small=25.0, rss_large=27.0,
                  resume_identical=True, phases=None):
    return {
        "bench": "repro.fleet",
        "host": {"cpu_count": 4, "python": "3.11", "platform": "test"},
        "jobs": 4,
        "fleet": {
            "devices": 360,
            "cells": 9,
            "shard_size": 32,
            "spawn": {
                "cold_s": spawn_cold,
                "forked_s": spawn_forked,
                "speedup": round(spawn_cold / spawn_forked, 2),
            },
            "delta": {
                "template_bytes": 9000,
                "full_bytes": 9100,
                "delta_bytes": delta_bytes,
                "ratio": round(delta_bytes / 9100, 4),
                "round_trip_identical": identical,
            },
            "seconds": {"serial": 1.0, "sharded": 0.5,
                        "sharded_noarena": 0.6, "cold_setup": 1.2},
            "speedup_vs_serial": {"sharded": 2.0},
            "identical_to_serial": {"sharded": identical,
                                    "sharded_noarena": identical,
                                    "cold_setup": identical},
        },
        "scaling": [
            {"devices": 360, "jobs": 1, "seconds": 0.8,
             "rss_mb": rss_small, "ok": True},
            {"devices": 5760, "jobs": 1, "seconds": 12.0,
             "rss_mb": rss_large, "ok": True},
        ],
        "phases": phases if phases is not None else _phases_section(),
        "resume": {"devices": 2000, "jobs": 2, "killed_mid_run": True,
                   "resume_exit": 0, "identical": resume_identical},
    }


class TestCheckFleetReport:
    def test_good_report_passes(self):
        assert bench.check_fleet_report(_fleet_report()) == []

    def test_divergent_results_fail(self):
        failures = bench.check_fleet_report(_fleet_report(identical=False))
        assert any("differs from serial" in failure for failure in failures)

    def test_slow_forked_spawn_fails(self):
        failures = bench.check_fleet_report(
            _fleet_report(spawn_cold=0.1, spawn_forked=0.4))
        assert any("not faster than" in failure for failure in failures)

    def test_fat_delta_residue_fails(self):
        failures = bench.check_fleet_report(_fleet_report(delta_bytes=9100))
        assert any("delta residue" in failure for failure in failures)

    def test_missing_scaling_curve_fails(self):
        report = _fleet_report()
        del report["scaling"]
        failures = bench.check_fleet_report(report)
        assert any("scaling curve missing" in failure
                   for failure in failures)

    def test_unbounded_rss_growth_fails(self):
        failures = bench.check_fleet_report(
            _fleet_report(rss_small=25.0, rss_large=250.0))
        assert any("RSS grows" in failure for failure in failures)

    def test_failed_scaling_point_fails(self):
        report = _fleet_report()
        report["scaling"][0] = {"devices": 360, "jobs": 1, "ok": False,
                                "error": "boom"}
        failures = bench.check_fleet_report(report)
        assert any("point devices=360" in failure for failure in failures)

    def test_divergent_resume_fails(self):
        failures = bench.check_fleet_report(
            _fleet_report(resume_identical=False))
        assert any("resumed report differs" in failure
                   for failure in failures)

    def test_missing_phases_section_fails(self):
        report = _fleet_report()
        del report["phases"]
        failures = bench.check_fleet_report(report)
        assert any("phases section missing" in failure
                   for failure in failures)

    def test_phased_jobs_divergence_fails(self):
        failures = bench.check_fleet_report(
            _fleet_report(phases=_phases_section(identical=False)))
        assert any("differs across job counts" in failure
                   for failure in failures)

    def test_flat_storm_asymmetry_fails(self):
        failures = bench.check_fleet_report(_fleet_report(
            phases=_phases_section(stock_asym=0.9)))
        assert any("asymmetry" in failure for failure in failures)

    def test_stock_crash_rate_must_climb_under_the_storm(self):
        failures = bench.check_fleet_report(_fleet_report(
            phases=_phases_section(stock_storm_crash=0.1,
                                   stock_calm_crash=0.12)))
        assert any("did not climb" in failure for failure in failures)

    def test_transparent_policy_crashing_like_stock_fails(self):
        failures = bench.check_fleet_report(_fleet_report(
            phases=_phases_section(fixed_storm_crash=0.6)))
        assert any("not below" in failure for failure in failures)

    def test_format_mentions_spawn_and_identity(self):
        text = bench.format_fleet_report(_fleet_report())
        assert "spawn" in text
        assert "byte-identical to serial: yes" in text
        assert "delta residue" in text
        assert "scaling" in text
        assert "phases" in text
        assert "asymmetry" in text
        assert "resume" in text

    def test_format_flags_divergence(self):
        text = bench.format_fleet_report(_fleet_report(identical=False))
        assert "byte-identical to serial: NO" in text


class TestCliParsing:
    def test_unknown_argument_exits_2(self, capsys):
        assert bench.main(["--frobnicate"]) == 2
        assert "unknown argument" in capsys.readouterr().err

    def test_fleet_mode_rejects_unknown_arguments(self, capsys):
        assert bench.main(["fleet", "--frobnicate"]) == 2
        assert "unknown argument" in capsys.readouterr().err
