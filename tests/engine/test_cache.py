"""Two-tier result cache: hits, persistence, invalidation, corruption."""

import json

from repro.apps.appset27 import build_appset27
from repro.engine.batch import RunRequest, execute_request
from repro.engine.cache import ResultCache
from repro.engine.codec import decode_result, encode_result


def _app():
    return build_appset27()[0]


def _result():
    return execute_request(RunRequest.handling("rchdroid", _app()))


def _encoded(result):
    return json.dumps(encode_result(result), sort_keys=True)


class TestCodec:
    def test_handling_round_trips_exactly(self):
        result = _result()
        again = decode_result(encode_result(result))
        assert again == result
        assert again.episodes[0] == result.episodes[0]
        assert isinstance(again.episodes[0], tuple)

    def test_issue_round_trips_exactly(self):
        result = execute_request(RunRequest.issue("android10", _app()))
        again = decode_result(encode_result(result))
        assert again == result
        assert again.issue is result.issue


class TestMemoryTier:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        request = RunRequest.handling("rchdroid", _app())
        key = request.cache_key()
        hit, _ = cache.get(key)
        assert not hit
        result = execute_request(request)
        cache.put(key, result)
        hit, cached = cache.get(key)
        assert hit
        assert cached is result  # tier 1 returns the stored object
        assert cache.stats.memory_hits == 1
        assert cache.stats.misses == 1

    def test_memory_only_mode(self):
        cache = ResultCache(root=None)
        cache.put("k", _result())
        hit, _ = cache.get("k")
        assert hit


class TestDiskTier:
    def test_persists_across_instances(self, tmp_path):
        request = RunRequest.handling("rchdroid", _app())
        key = request.cache_key()
        result = execute_request(request)
        ResultCache(root=tmp_path).put(key, result)

        fresh = ResultCache(root=tmp_path)
        hit, cached = fresh.get(key)
        assert hit
        assert fresh.stats.disk_hits == 1
        assert _encoded(cached) == _encoded(result)
        # the hit was promoted to tier 1
        hit, _ = fresh.get(key)
        assert fresh.stats.memory_hits == 1

    def test_schema_version_bump_invalidates(self, tmp_path):
        request = RunRequest.handling("rchdroid", _app())
        old = ResultCache(root=tmp_path, schema_version=1)
        old.put(request.cache_key(1), _result())

        new = ResultCache(root=tmp_path, schema_version=2)
        hit, _ = new.get(request.cache_key(2))
        assert not hit
        # and the keys themselves differ, so even equal dirs can't collide
        assert request.cache_key(1) != request.cache_key(2)

    def test_corrupt_file_is_a_miss(self, tmp_path):
        request = RunRequest.handling("rchdroid", _app())
        key = request.cache_key()
        cache = ResultCache(root=tmp_path)
        cache.put(key, _result())
        path = cache._path(key)
        path.write_text("{ not json")

        fresh = ResultCache(root=tmp_path)
        hit, _ = fresh.get(key)
        assert not hit

    def test_wrong_key_in_payload_is_a_miss(self, tmp_path):
        request = RunRequest.handling("rchdroid", _app())
        key = request.cache_key()
        cache = ResultCache(root=tmp_path)
        cache.put(key, _result())
        path = cache._path(key)
        payload = json.loads(path.read_text())
        payload["key"] = "0" * 64
        path.write_text(json.dumps(payload))

        fresh = ResultCache(root=tmp_path)
        hit, _ = fresh.get(key)
        assert not hit

    def test_unwritable_root_degrades_to_memory(self, tmp_path):
        blocker = tmp_path / "flat"
        blocker.write_text("in the way")  # a file where the dir should go
        cache = ResultCache(root=blocker / "sub")
        cache.put("k", _result())
        hit, _ = cache.get("k")
        assert hit  # memory tier still served it
