"""Pinned end-to-end equivalence: parallel/cached experiments == serial.

The engine's headline guarantee, checked on the real experiment
pipelines: running Fig. 14 and Table 5 with ``jobs=4`` (on any host,
whatever its core count) or through a cold-then-warm cache yields rows
identical to the serial run — same objects, same formatted report.
"""

from repro.engine import ResultCache
from repro.harness.experiments import fig14, table5


class TestFig14:
    def test_parallel_rows_identical_to_serial(self):
        serial = fig14.run(jobs=1)
        parallel = fig14.run(jobs=4)
        assert parallel.rows == serial.rows
        assert fig14.format_report(parallel) == fig14.format_report(serial)

    def test_cached_rows_identical_to_serial(self, tmp_path):
        serial = fig14.run(jobs=1)
        cache = ResultCache(root=tmp_path)
        cold = fig14.run(cache=cache)
        warm = fig14.run(cache=cache)
        assert cold.rows == serial.rows
        assert warm.rows == serial.rows
        assert cache.stats.memory_hits == cache.stats.stores == 118

    def test_disk_tier_rows_identical_to_serial(self, tmp_path):
        serial = fig14.run(jobs=1)
        fig14.run(cache=ResultCache(root=tmp_path))
        fresh = ResultCache(root=tmp_path)
        from_disk = fig14.run(cache=fresh)
        assert from_disk.rows == serial.rows
        assert fresh.stats.disk_hits == 118
        assert fresh.stats.misses == 0


class TestTable5:
    def test_parallel_rows_identical_to_serial(self):
        serial = table5.run(jobs=1)
        parallel = table5.run(jobs=4)
        assert parallel.rows == serial.rows
        assert parallel.solved == serial.solved
        assert table5.format_report(parallel) == table5.format_report(serial)

    def test_cached_rows_identical_to_serial(self, tmp_path):
        serial = table5.run(jobs=1)
        cache = ResultCache(root=tmp_path)
        cold = table5.run(cache=cache)
        warm = table5.run(cache=cache)
        assert cold.rows == serial.rows
        assert warm.rows == serial.rows
        assert warm.solved == serial.solved


class TestHeadlineNumbersSurvive:
    """The paper-facing aggregates must not move under the engine."""

    def test_fig14_means_pinned(self):
        result = fig14.run(jobs=4)
        assert len(result.rows) == 59
        assert round(result.mean_rchdroid_ms, 2) == 251.03

    def test_table5_counts_pinned(self, tmp_path):
        result = table5.run(cache=ResultCache(root=tmp_path))
        assert result.with_issue == 63
        assert result.solved == 59
