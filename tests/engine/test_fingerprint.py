"""Canonical fingerprints: stable, distinct, and total over our inputs."""

import dataclasses
import enum

import pytest

from repro.apps.appset27 import build_appset27
from repro.apps.top100 import build_top100
from repro.engine.fingerprint import canonicalize, fingerprint
from repro.errors import EngineError
from repro.sim.costs import DEFAULT_COSTS, CostModel


class Colour(enum.Enum):
    RED = 1
    BLUE = 2


@dataclasses.dataclass(frozen=True)
class Point:
    x: float
    y: float


class TestStability:
    def test_same_value_same_fingerprint(self):
        assert fingerprint([1, "a", None]) == fingerprint([1, "a", None])

    def test_rebuilt_corpus_fingerprints_identically(self):
        first = build_top100()
        second = build_top100()
        assert first is not second
        assert fingerprint(first[0]) == fingerprint(second[0])

    def test_dict_key_order_is_irrelevant(self):
        assert fingerprint({"a": 1, "b": 2}) == fingerprint({"b": 2, "a": 1})

    def test_set_order_is_irrelevant(self):
        assert fingerprint({3, 1, 2}) == fingerprint({2, 3, 1})

    def test_cost_model_fingerprints_stably(self):
        assert fingerprint(DEFAULT_COSTS) == fingerprint(CostModel())


class TestDistinctness:
    def test_different_apps_differ(self):
        apps = build_appset27()
        prints = {fingerprint(app) for app in apps}
        assert len(prints) == len(apps)

    def test_tuple_and_flat_differ(self):
        assert fingerprint([1, 2]) != fingerprint([[1, 2]])

    def test_int_vs_float_differ(self):
        assert fingerprint(1) != fingerprint(1.0)

    def test_bool_vs_int_differ(self):
        assert fingerprint(True) != fingerprint(1)

    def test_string_vs_number_differ(self):
        assert fingerprint("1") != fingerprint(1)

    def test_changed_dataclass_field_differs(self):
        assert fingerprint(Point(1.0, 2.0)) != fingerprint(Point(1.0, 2.5))

    def test_changed_cost_constant_differs(self):
        tweaked = dataclasses.replace(
            DEFAULT_COSTS,
            inflate_per_view_ms=DEFAULT_COSTS.inflate_per_view_ms + 0.1,
        )
        assert fingerprint(tweaked) != fingerprint(DEFAULT_COSTS)


class TestEncodingForms:
    def test_enum_encodes_by_identity_and_value(self):
        encoded = canonicalize(Colour.RED)
        assert encoded[0] == "enum"
        assert "Colour" in encoded[1]

    def test_enums_of_equal_value_but_different_type_differ(self):
        class Other(enum.Enum):
            RED = 1

        assert fingerprint(Colour.RED) != fingerprint(Other.RED)

    def test_float_round_trips_exactly(self):
        value = 0.1 + 0.2  # not representable as 0.3
        assert canonicalize(value) == ["f", repr(value)]

    def test_class_reference_by_dotted_name(self):
        tag, name = canonicalize(Point)
        assert tag == "ref"
        assert name.endswith("Point")

    def test_non_string_dict_keys_work(self):
        assert fingerprint({Colour.RED: 1}) != fingerprint({Colour.BLUE: 1})

    def test_unfingerprintable_object_raises(self):
        with pytest.raises(EngineError):
            fingerprint(object())
