"""PersistentPool: lazy spawn, self-healing, idempotent shutdown.

The daemon's pool must outlive any single job *and* any single worker:
a SIGKILLed worker breaks one ``concurrent.futures`` executor, and the
pool's contract is that the next submit quietly replaces it.
"""

from __future__ import annotations

import os
import signal

from repro.engine.pool import PersistentPool


def _double(value):
    return value * 2


def _pid(_ignored):
    return os.getpid()


def _die(_ignored):  # pragma: no cover - killed before returning
    os.kill(os.getpid(), signal.SIGKILL)


def test_pool_is_lazy_until_first_submit():
    pool = PersistentPool(2)
    assert not pool.alive
    try:
        assert pool.submit(_double, 21).result(timeout=60) == 42
        assert pool.alive
    finally:
        pool.shutdown()
    assert not pool.alive


def test_workers_persist_across_submissions():
    pool = PersistentPool(1)
    try:
        first = pool.submit(_pid, None).result(timeout=60)
        second = pool.submit(_pid, None).result(timeout=60)
        assert first == second  # same warm worker, not a respawn
        assert pool.respawns == 0
    finally:
        pool.shutdown()


def test_broken_pool_respawns_on_next_submit():
    pool = PersistentPool(1)
    try:
        future = pool.submit(_die, None)
        # The task's own future fails (its worker is gone)...
        assert isinstance(future.exception(timeout=60), Exception)
        # ...but the pool recovers: the next submit respawns and runs.
        assert pool.submit(_double, 4).result(timeout=60) == 8
        assert pool.respawns >= 1
    finally:
        pool.shutdown()


def test_shutdown_is_idempotent_and_submit_revives():
    pool = PersistentPool(1)
    pool.submit(_double, 1).result(timeout=60)
    pool.shutdown()
    pool.shutdown()
    try:
        assert pool.submit(_double, 3).result(timeout=60) == 6
    finally:
        pool.shutdown()
