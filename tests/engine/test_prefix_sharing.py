"""Prefix-snapshot sharing in run_batch: grouping, forking, verification."""

import dataclasses
import json
import os

import pytest

from repro.apps.appset27 import build_appset27
from repro.apps.benchmark import make_benchmark_app
from repro.engine import (
    SCENARIOS,
    ResultCache,
    RunRequest,
    SnapshotStore,
    encode_result,
    run_batch,
)
from repro.engine.batch import _execute_unit, _resolve_jobs
from repro.errors import SnapshotError
from repro.trace.tracer import TraceSession


def _encoded(results):
    return [json.dumps(encode_result(r), sort_keys=True) for r in results]


def _gc_requests(thresholds=(10.0, 20.0, 30.0)):
    app = make_benchmark_app(4)
    return [
        RunRequest.gc(app, thresh_t_s=t, duration_ms=60_000.0)
        for t in thresholds
    ]


def _probe_requests(delays=(200.0, 1_000.0, 6_000.0)):
    app = make_benchmark_app(4)
    return [
        RunRequest.probe("rchdroid", app, audit_delay_ms=d) for d in delays
    ]


class TestPrefixKey:
    def test_divergent_kwargs_share_a_prefix(self):
        first, second, _ = _gc_requests()
        assert first.prefix_key() == second.prefix_key()
        assert first.cache_key() != second.cache_key()

    def test_seed_splits_the_prefix(self):
        app = make_benchmark_app(4)
        assert (RunRequest.gc(app, seed=1, thresh_t_s=10.0).prefix_key()
                != RunRequest.gc(app, seed=2, thresh_t_s=10.0).prefix_key())

    def test_policy_splits_the_prefix(self):
        app = make_benchmark_app(4)
        assert (RunRequest.probe("android10", app).prefix_key()
                != RunRequest.probe("rchdroid", app).prefix_key())

    def test_prefix_kwargs_split_the_prefix(self):
        app = make_benchmark_app(4)
        assert (RunRequest.probe("rchdroid", app,
                                 storm_rotations=3).prefix_key()
                != RunRequest.probe("rchdroid", app).prefix_key())

    def test_key_is_memoised(self):
        request = _gc_requests()[0]
        assert request.prefix_key() is request.prefix_key()


class TestForkedEqualsFresh:
    @pytest.mark.parametrize("build", [_gc_requests, _probe_requests])
    def test_shared_batch_matches_unshared(self, build):
        requests = build()
        shared = run_batch(requests, snapshots=True)
        fresh = run_batch(requests, snapshots=False)
        assert _encoded(shared) == _encoded(fresh)

    def test_mixed_groups_keep_submission_order(self):
        probe = _probe_requests()
        gc = _gc_requests()
        # Interleave the two groups; results must realign by position.
        requests = [probe[0], gc[0], probe[1], gc[1], probe[2], gc[2]]
        shared = run_batch(requests, snapshots=True)
        fresh = run_batch(requests, snapshots=False)
        assert _encoded(shared) == _encoded(fresh)

    def test_parallel_shared_batch_is_identical(self):
        requests = _probe_requests() + _gc_requests()
        assert (_encoded(run_batch(requests, jobs=2, snapshots=True))
                == _encoded(run_batch(requests, jobs=1, snapshots=False)))

    def test_verify_forks_passes_on_deterministic_scenarios(self):
        requests = _gc_requests()
        verified = run_batch(requests, snapshots=True, verify_forks=True)
        assert _encoded(verified) == _encoded(run_batch(requests,
                                                        snapshots=False))


class TestVerifyForksDetectsMismatch:
    def test_divergent_fresh_path_raises(self, monkeypatch):
        requests = _probe_requests()
        spec = SCENARIOS[requests[0].kind]
        broken = dataclasses.replace(
            spec,
            run=lambda *args, **kwargs: dataclasses.replace(
                spec.run(*args, **kwargs), handling_count=999),
        )
        monkeypatch.setitem(SCENARIOS, requests[0].kind, broken)
        with pytest.raises(SnapshotError):
            run_batch(requests, snapshots=True, verify_forks=True)


class TestStoreWiring:
    def test_singletons_never_touch_the_store(self):
        store = SnapshotStore()
        app = build_appset27()[0]
        _execute_unit([RunRequest.handling("rchdroid", app)], store, False)
        assert len(store) == 0
        assert store.stats.misses == 0

    def test_group_stores_one_snapshot(self):
        store = SnapshotStore()
        results = _execute_unit(_probe_requests(), store, False)
        assert len(results) == 3
        assert len(store) == 1
        assert store.stats.stores == 1

    def test_disk_tier_survives_new_divergent_values(self, tmp_path):
        # First batch populates result + snapshot caches on disk.
        cache = ResultCache(root=tmp_path)
        run_batch(_probe_requests((200.0, 1_000.0)), cache=cache,
                  snapshots=True)
        snap_dir = tmp_path / "snapshots"
        assert any(snap_dir.rglob("*.snap"))
        # A NEW divergent value misses the result cache but forks from
        # the persisted prefix snapshot; the result must stay identical.
        fresh_cache = ResultCache(root=tmp_path)
        novel = _probe_requests((3_000.0,))
        from_disk = run_batch(novel, cache=fresh_cache, snapshots=True)
        assert (_encoded(from_disk)
                == _encoded(run_batch(novel, snapshots=False)))

    def test_corrupt_disk_snapshot_is_a_miss(self, tmp_path):
        store = SnapshotStore(root=tmp_path)
        live_store = SnapshotStore(root=tmp_path)
        _execute_unit(_probe_requests(), live_store, False)
        [path] = list(tmp_path.rglob("*.snap"))
        path.write_bytes(b"not a snapshot")
        assert store.get(next(iter(live_store._memory))) is None
        assert store.stats.misses == 1


class TestTraceSessionGating:
    def test_session_disables_sharing_but_results_hold(self):
        requests = _probe_requests((200.0, 1_000.0))
        fresh = run_batch(requests, snapshots=False)
        with TraceSession():
            inside = run_batch(requests, snapshots=True)
        assert _encoded(inside) == _encoded(fresh)


class TestResolveJobs:
    def test_auto_caps_at_unit_count(self):
        assert _resolve_jobs("auto", 1) == 1

    def test_auto_caps_at_cpu_count(self):
        assert _resolve_jobs("auto", 10_000) == max(1, os.cpu_count() or 1)

    def test_explicit_integer_wins(self):
        assert _resolve_jobs(3, 100) == 3

    def test_floor_is_one(self):
        assert _resolve_jobs(0, 5) == 1
