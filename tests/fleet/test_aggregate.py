"""Aggregation: merge-topology independence is the load-bearing claim."""

import random

import pytest

from repro.fleet.aggregate import (
    CohortAccumulator,
    LatencySketch,
    dequantize,
    quantize,
)
from repro.fleet.device import DeviceOutcome


def _outcome(member, **overrides):
    defaults = dict(
        member=member, crashed=member % 3 == 0,
        loss_events=member % 2, audits=4, process_deaths=member % 2,
        handling_ms=(10.5 + member, 120.0 + member),
        memory_mb=40.0 + member if member % 3 else None,
        ops=8, faulted=member % 5 == 0,
    )
    defaults.update(overrides)
    return DeviceOutcome(**defaults)


class TestQuantize:
    def test_round_trip(self):
        assert dequantize(quantize(123.456789)) == pytest.approx(123.456789)

    def test_sum_is_exact_under_any_grouping(self):
        values = [0.1, 0.2, 0.3, 1e-6, 123.456]
        left = sum(quantize(v) for v in values)
        right = (quantize(0.1) + quantize(0.2)) + (
            quantize(0.3) + (quantize(1e-6) + quantize(123.456)))
        assert left == right


class TestLatencySketch:
    def test_quantiles_are_monotonic(self):
        sketch = LatencySketch()
        rng = random.Random(7)
        for _ in range(500):
            sketch.add(rng.uniform(0.5, 900.0))
        qs = [sketch.quantile(q) for q in (0.1, 0.5, 0.9, 0.99, 1.0)]
        assert qs == sorted(qs)

    def test_relative_error_is_bounded(self):
        sketch = LatencySketch()
        values = sorted(5.0 + 3.7 * step for step in range(200))
        for value in values:
            sketch.add(value)
        for q in (0.5, 0.95, 0.99):
            exact = values[min(len(values) - 1,
                               int(q * len(values)))]
            approx = sketch.quantile(q)
            assert abs(approx - exact) / exact < 0.05

    def test_merge_is_order_independent(self):
        rng = random.Random(11)
        values = [rng.uniform(0.05, 2000.0) for _ in range(300)]
        chunks = [values[i::4] for i in range(4)]
        sketches = []
        for chunk in chunks:
            sketch = LatencySketch()
            for value in chunk:
                sketch.add(value)
            sketches.append(sketch)

        def fold(order):
            total = LatencySketch()
            for index in order:
                total.merge(sketches[index])
            return (total.total, total.floor_count,
                    sorted(total.buckets.items()))

        assert fold([0, 1, 2, 3]) == fold([3, 1, 0, 2]) == fold([2, 3, 1, 0])

    def test_floor_bucket(self):
        sketch = LatencySketch()
        sketch.add(0.01)
        sketch.add(0.0)
        assert sketch.quantile(0.5) == pytest.approx(0.1)

    def test_empty_sketch_has_no_quantiles(self):
        assert LatencySketch().quantile(0.5) is None

    def test_encode_decode_round_trip(self):
        sketch = LatencySketch()
        for value in (0.05, 1.0, 50.0, 1000.0):
            sketch.add(value)
        clone = LatencySketch.decode(sketch.encode())
        assert clone.total == sketch.total
        assert clone.floor_count == sketch.floor_count
        assert clone.buckets == sketch.buckets


class TestCohortAccumulator:
    def test_merge_equals_sequential_add(self):
        outcomes = [_outcome(member) for member in range(40)]
        serial = CohortAccumulator("a.pkg", "rchdroid")
        for outcome in outcomes:
            serial.add(outcome)

        shards = []
        for start in range(0, 40, 7):
            shard = CohortAccumulator("a.pkg", "rchdroid")
            for outcome in outcomes[start:start + 7]:
                shard.add(outcome)
            shards.append(shard)
        merged = CohortAccumulator("a.pkg", "rchdroid")
        for shard in shards:
            merged.merge(shard)

        assert merged.row() == serial.row()

    def test_merge_rejects_cohort_mismatch(self):
        left = CohortAccumulator("a.pkg", "rchdroid")
        with pytest.raises(ValueError):
            left.merge(CohortAccumulator("b.pkg", "rchdroid"))
        with pytest.raises(ValueError):
            left.merge(CohortAccumulator("a.pkg", "android10"))

    def test_unchecked_merge_supports_rollups(self):
        left = CohortAccumulator("*", "rchdroid")
        cohort = CohortAccumulator("a.pkg", "rchdroid")
        cohort.add(_outcome(1))
        left.merge(cohort, check_cohort=False)
        assert left.devices == 1

    def test_row_rates(self):
        accumulator = CohortAccumulator("a.pkg", "rchdroid")
        for member in range(4):
            accumulator.add(_outcome(
                member, crashed=member == 0, loss_events=member % 2,
                memory_mb=50.0, handling_ms=(100.0,),
            ))
        row = accumulator.row()
        assert row["devices"] == 4
        assert row["crash_rate"] == pytest.approx(0.25)
        assert row["data_loss_rate"] == pytest.approx(0.5)
        assert row["memory_mean_mb"] == pytest.approx(50.0)
        assert row["handling"]["count"] == 4
        assert row["handling"]["mean_ms"] == pytest.approx(100.0)

    def test_devices_without_memory_are_excluded_from_the_mean(self):
        accumulator = CohortAccumulator("a.pkg", "android10")
        accumulator.add(_outcome(0, memory_mb=None, crashed=True))
        accumulator.add(_outcome(1, memory_mb=30.0, crashed=False))
        assert accumulator.row()["memory_mean_mb"] == pytest.approx(30.0)
