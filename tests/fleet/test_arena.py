"""Shared-memory template arena: lifecycle, miss semantics, identity.

The arena is strictly an optimisation under the fork-equals-fresh
contract, so the tests here pin two kinds of promise:

* **lifecycle** — segments never outlive the run (normal exit *and*
  crashed workers leave no ``/dev/shm`` entries), and ``destroy()`` is
  idempotent;
* **miss, never error** — unknown keys, unlinked segments, and corrupt
  bytes all degrade to ``None`` so the caller falls back to disk or a
  cold rebuild, and every fallback path produces byte-identical fleet
  reports.
"""

from __future__ import annotations

import glob
import os
import signal

import pytest

from repro.fleet.arena import (
    TemplateArena,
    _detach_all,
    _reset_arena_stats,
    arena_available,
    arena_get,
    arena_stats,
)
from repro.fleet.run import (
    FleetSpec,
    _delta_bases,
    _reset_template_cache,
    capture_template,
    run_fleet,
    template_key,
)

pytestmark = pytest.mark.skipif(
    not arena_available(), reason="no shared memory on this host"
)

SPEC = FleetSpec(devices_per_cell=4, shard_size=2)


@pytest.fixture(autouse=True)
def _clean_arena_state():
    _reset_template_cache()
    yield
    _detach_all()
    _reset_template_cache()


def _shm_entries() -> set[str]:
    return set(glob.glob("/dev/shm/psm_*"))


def _publish(cell_indices=(0,), delta=False):
    keys = {ci: template_key(SPEC, ci) for ci in cell_indices}
    snaps = {keys[ci]: capture_template(SPEC, ci) for ci in cell_indices}
    bases = _delta_bases(SPEC, keys) if delta else None
    arena = TemplateArena.publish(snaps, bases)
    assert arena is not None
    return arena, keys, snaps


class TestLifecycle:
    def test_destroy_removes_the_segment(self):
        before = _shm_entries()
        arena, _, _ = _publish()
        assert len(_shm_entries()) == len(before) + 1
        arena.destroy()
        assert _shm_entries() == before

    def test_destroy_is_idempotent(self):
        arena, _, _ = _publish()
        arena.destroy()
        arena.destroy()

    def test_fleet_run_leaves_no_segments(self):
        before = _shm_entries()
        run_fleet(SPEC, jobs=2)
        assert _shm_entries() == before

    def test_crashed_worker_leaks_nothing(self):
        """A worker that dies with views mapped must not take the
        segment down with it, and the coordinator's destroy() still
        cleans up."""
        before = _shm_entries()
        arena, keys, snaps = _publish()
        key = keys[0]
        pid = os.fork()
        if pid == 0:  # the doomed worker: attach, then die hard
            arena_get(arena.handle, key)
            os.kill(os.getpid(), signal.SIGKILL)
        os.waitpid(pid, 0)
        # Segment still alive and readable after the worker's death...
        _detach_all()
        survivor = arena_get(arena.handle, key)
        assert survivor is not None
        assert bytes(survivor.payload) == bytes(snaps[key].payload)
        # ...and gone after the owner destroys it.
        _detach_all()
        arena.destroy()
        assert _shm_entries() == before


class TestMissSemantics:
    def test_unknown_key_is_a_miss(self):
        arena, _, _ = _publish()
        try:
            _reset_arena_stats()
            assert arena_get(arena.handle, "no-such-key") is None
            assert arena_stats()["arena_misses"] == 1
        finally:
            arena.destroy()

    def test_unlinked_segment_is_a_miss(self):
        arena, keys, _ = _publish()
        handle = arena.handle
        arena.destroy()
        _reset_arena_stats()
        assert arena_get(handle, keys[0]) is None
        assert arena_stats()["arena_misses"] == 1

    def test_corrupt_payload_is_a_miss_not_an_error(self):
        arena, keys, _ = _publish()
        try:
            entry = arena.handle.entry(keys[0])
            arena._shm.buf[entry.payload_offset] ^= 0xFF
            _reset_arena_stats()
            assert arena_get(arena.handle, keys[0]) is None
            assert arena_stats()["arena_corrupt"] == 1
        finally:
            arena.destroy()

    def test_corrupt_segment_rebuild_is_byte_identical(self, monkeypatch):
        """End to end: zeroing the published segment degrades every
        worker to the disk/cold fallback, and the report stays
        byte-identical (fork-equals-fresh, pinned)."""
        golden = run_fleet(SPEC, jobs=1).report()

        original = TemplateArena.publish.__func__

        def corrupting_publish(cls, snapshots, delta_bases=None):
            arena = original(cls, snapshots, delta_bases)
            if arena is not None:
                arena._shm.buf[:] = bytes(len(arena._shm.buf))
            return arena

        monkeypatch.setattr(TemplateArena, "publish",
                            classmethod(corrupting_publish))
        corrupted = run_fleet(SPEC, jobs=2, collect_stats=True)
        assert {k: v for k, v in corrupted.report().items()
                if k != "cache"} == golden
        # Workers fell back (disk tier still had the templates).
        stats = corrupted.cache_stats
        assert stats["arena_corrupt"] + stats["arena_misses"] > 0
        assert stats["arena_fallbacks"] > 0
        assert stats["arena_hits"] == 0


class TestZeroCopyAndDeltas:
    def test_full_entry_payload_is_a_shared_view(self):
        arena, keys, snaps = _publish()
        try:
            got = arena_get(arena.handle, keys[0])
            assert isinstance(got.payload, memoryview)
            assert bytes(got.payload) == bytes(snaps[keys[0]].payload)
            assert got.policy_name == snaps[keys[0]].policy_name
            assert got.now_ms == snaps[keys[0]].now_ms
        finally:
            _detach_all()
            arena.destroy()

    def test_sibling_policies_are_stored_as_deltas(self):
        cells = (0, 1, 2)  # first app x all three policies
        arena, keys, snaps = _publish(cells, delta=True)
        try:
            base_entry = arena.handle.entry(keys[0])
            assert base_entry.base_key is None
            for ci in (1, 2):
                entry = arena.handle.entry(keys[ci])
                assert entry.base_key == keys[0]
                assert entry.payload_length \
                    < len(bytes(snaps[keys[ci]].payload))
                composed = arena_get(arena.handle, keys[ci])
                assert bytes(composed.payload) \
                    == bytes(snaps[keys[ci]].payload)
        finally:
            _detach_all()
            arena.destroy()

    def test_restored_template_behaves_identically(self):
        arena, keys, snaps = _publish()
        try:
            via_arena = arena_get(arena.handle, keys[0]).restore()
            direct = snaps[keys[0]].restore()
            via_arena.rotate()
            direct.rotate()
            via_arena.run_until_idle()
            direct.run_until_idle()
            assert via_arena.now_ms == direct.now_ms
            assert (via_arena.last_handling_ms()
                    == direct.last_handling_ms())
        finally:
            _detach_all()
            arena.destroy()
