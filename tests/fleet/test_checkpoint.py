"""Checkpoint/resume: byte-identity, atomicity, refusal semantics.

The contract under test: a fleet run killed at *any* fold boundary and
resumed from its checkpoint produces a report byte-identical to an
uninterrupted run; a corrupt checkpoint is a miss (restart, stay
correct); a checkpoint from a different spec is an error, never a
silent poisoning.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.errors import FleetError
from repro.fleet.checkpoint import (
    CHECKPOINT_SCHEMA_VERSION,
    FleetCheckpoint,
    load_checkpoint,
    save_checkpoint,
)
from repro.engine.fingerprint import fingerprint
from repro.fleet.faults import FaultPlan
from repro.fleet.run import FleetSpec, plan_shards, run_fleet

SPEC = FleetSpec(devices_per_cell=4, shard_size=2, oracle_rate=0.25)


def _ckpt(path, tmp_path):
    return str(tmp_path / path)


class TestCodec:
    def test_round_trip(self, tmp_path):
        path = _ckpt("fleet.ckpt", tmp_path)
        run_fleet(SPEC, checkpoint_path=path)
        data = json.loads(open(path).read())
        assert data["schema"] == CHECKPOINT_SCHEMA_VERSION
        decoded = FleetCheckpoint.decode(data)
        assert decoded.encode() == data
        assert decoded.devices == SPEC.total_devices
        assert decoded.completed == tuple(
            range(len(plan_shards(SPEC))))

    def test_save_is_atomic(self, tmp_path):
        path = _ckpt("fleet.ckpt", tmp_path)
        run_fleet(SPEC, checkpoint_path=path)
        # No temp droppings next to the published file.
        assert os.listdir(tmp_path) == ["fleet.ckpt"]


class TestResume:
    def test_completed_checkpoint_resumes_byte_identically(self, tmp_path):
        base = run_fleet(SPEC).to_json()
        path = _ckpt("fleet.ckpt", tmp_path)
        first = run_fleet(SPEC, checkpoint_path=path)
        resumed = run_fleet(SPEC, checkpoint_path=path)
        assert first.to_json() == base
        assert resumed.to_json() == base

    def test_partial_checkpoint_resumes_byte_identically(
            self, tmp_path, monkeypatch):
        """Kill the run after a few folds, resume, compare bytes —
        including with faults and the oracle enabled."""
        spec = FleetSpec(devices_per_cell=4, shard_size=2,
                         oracle_rate=0.25,
                         faults=FaultPlan(
                             low_memory_kill_fraction=0.3,
                             slow_storage_fraction=0.2,
                             mid_migration_death_fraction=0.2))
        base = run_fleet(spec).to_json()
        path = _ckpt("fleet.ckpt", tmp_path)

        import repro.fleet.run as run_module

        real_run_shard = run_module._run_shard
        calls = {"n": 0}

        def dying_run_shard(*args, **kwargs):
            if calls["n"] >= 3:
                raise KeyboardInterrupt  # the "kill"
            calls["n"] += 1
            return real_run_shard(*args, **kwargs)

        monkeypatch.setattr(run_module, "_run_shard", dying_run_shard)
        with pytest.raises(KeyboardInterrupt):
            run_fleet(spec, checkpoint_path=path, checkpoint_every=1)
        monkeypatch.setattr(run_module, "_run_shard", real_run_shard)

        ckpt = load_checkpoint(path, fingerprint(spec),
                               len(plan_shards(spec)))
        assert ckpt is not None
        assert 0 < len(ckpt.completed) < len(plan_shards(spec))

        resumed = run_fleet(spec, checkpoint_path=path)
        assert resumed.to_json() == base

    def test_corrupt_checkpoint_is_a_miss(self, tmp_path):
        base = run_fleet(SPEC).to_json()
        path = _ckpt("fleet.ckpt", tmp_path)
        with open(path, "w") as handle:
            handle.write('{"schema": 1, "truncated')
        assert load_checkpoint(path, fingerprint(SPEC),
                               len(plan_shards(SPEC))) is None
        restarted = run_fleet(SPEC, checkpoint_path=path)
        assert restarted.to_json() == base

    def test_future_schema_is_a_miss(self, tmp_path):
        path = _ckpt("fleet.ckpt", tmp_path)
        run_fleet(SPEC, checkpoint_path=path)
        data = json.loads(open(path).read())
        data["schema"] = CHECKPOINT_SCHEMA_VERSION + 1
        with open(path, "w") as handle:
            json.dump(data, handle)
        assert load_checkpoint(path, fingerprint(SPEC),
                               len(plan_shards(SPEC))) is None


class TestRefusals:
    def test_other_specs_checkpoint_raises(self, tmp_path):
        path = _ckpt("fleet.ckpt", tmp_path)
        run_fleet(SPEC, checkpoint_path=path)
        other = FleetSpec(devices_per_cell=4, shard_size=2, seed=999)
        with pytest.raises(FleetError, match="different fleet spec"):
            run_fleet(other, checkpoint_path=path)

    def test_checkpoint_with_explicit_shards_raises(self, tmp_path):
        path = _ckpt("fleet.ckpt", tmp_path)
        with pytest.raises(FleetError, match="shard_ids"):
            run_fleet(SPEC, checkpoint_path=path, shard_ids=(0,))

    def test_checkpoint_survives_unrelated_save_noise(self, tmp_path):
        """save_checkpoint never leaves a clobbered file even when the
        previous checkpoint exists."""
        path = _ckpt("fleet.ckpt", tmp_path)
        ckpt = FleetCheckpoint(
            spec_fingerprint="abc", total_shards=2, completed=(0,),
            devices=4, cohorts=[], oracle=None)
        save_checkpoint(path, ckpt)
        save_checkpoint(path, ckpt)
        loaded = load_checkpoint(path, "abc", 2)
        assert loaded.completed == (0,)
        assert loaded.devices == 4
