"""Delta snapshots: round-trip byte-identity across policies ± faults.

A device checkpoint stored as ``template + delta`` must recompose to
the *exact* bytes of the full snapshot — for every policy, whether or
not the device's journey included kills, slow storage, or
mid-migration deaths — and the recomposed system must be behaviourally
indistinguishable from one restored from the full snapshot.
"""

from __future__ import annotations

import pytest

from repro.errors import SnapshotError
from repro.fleet.device import run_device
from repro.fleet.faults import NO_FAULTS, FaultPlan
from repro.fleet.population import device_script
from repro.fleet.run import FleetSpec, capture_template, run_fleet
from repro.sim.snapshot import DeltaSnapshot, SystemSnapshot

# Kills and mid-migration deaths disturb the journey but leave the
# externalised inputs shared, so a delta stays possible.  Slow storage
# does not: it swaps the cost model (an external), which is the guard
# case pinned in TestGuards below.
FAULTY = FaultPlan(
    low_memory_kill_fraction=1.0,
    mid_migration_death_fraction=1.0,
)

POLICY_CELLS = [
    pytest.param(policy, faults, id=f"{policy}-{label}")
    for policy in ("android10", "runtimedroid", "rchdroid")
    for label, faults in (("clean", NO_FAULTS), ("faulty", FAULTY))
]


def _diverged_device(policy: str, faults: FaultPlan):
    """A (template, full-snapshot) pair after one member's journey."""
    spec = FleetSpec(devices_per_cell=2, shard_size=2,
                     policies=(policy,), faults=faults)
    cell_index = 0
    template = capture_template(spec, cell_index)
    app, _ = spec.cells()[cell_index]
    system = template.restore()
    run_device(
        system, app,
        device_script(spec.population, spec.seed, member=0),
        faults.draw(spec.seed, 0),
        faults, 0,
    )
    return template, SystemSnapshot.capture(system)


class TestRoundTrip:
    @pytest.mark.parametrize("policy,faults", POLICY_CELLS)
    def test_compose_is_byte_exact(self, policy, faults):
        template, full = _diverged_device(policy, faults)
        delta = full.delta_from(template)
        assert delta.apply(template) == bytes(full.payload)
        recomposed = delta.to_snapshot(template)
        assert bytes(recomposed.payload) == bytes(full.payload)
        assert recomposed.policy_name == full.policy_name
        assert recomposed.now_ms == full.now_ms

    @pytest.mark.parametrize("policy,faults", POLICY_CELLS)
    def test_restored_system_is_equivalent(self, policy, faults):
        template, full = _diverged_device(policy, faults)
        delta = full.delta_from(template)
        via_delta = delta.restore(template)
        via_full = full.restore()
        via_delta.rotate()
        via_full.rotate()
        via_delta.run_until_idle()
        via_full.run_until_idle()
        assert via_delta.now_ms == via_full.now_ms
        assert (via_delta.last_handling_ms()
                == via_full.last_handling_ms())

    @pytest.mark.parametrize("policy,faults", POLICY_CELLS)
    def test_wire_format_round_trips(self, policy, faults):
        template, full = _diverged_device(policy, faults)
        delta = full.delta_from(template)
        revived = DeltaSnapshot.from_bytes(delta.to_bytes())
        assert revived.apply(template) == bytes(full.payload)

    def test_residue_is_smaller_than_the_full_payload(self):
        template, full = _diverged_device("rchdroid", NO_FAULTS)
        delta = full.delta_from(template)
        assert 0 < delta.size_bytes < full.size_bytes


class TestGuards:
    def test_delta_against_the_wrong_template_refuses(self):
        template, full = _diverged_device("rchdroid", NO_FAULTS)
        other, _ = _diverged_device("android10", NO_FAULTS)
        delta = full.delta_from(template)
        with pytest.raises(SnapshotError):
            delta.apply(other)

    def test_slow_storage_devices_refuse_delta(self):
        """Slow storage swaps the cost model — no longer the template's
        shared external, so a delta would be unsound and is refused."""
        slow = FaultPlan(slow_storage_fraction=1.0)
        template, full = _diverged_device("rchdroid", slow)
        with pytest.raises(SnapshotError, match="forked from"):
            full.delta_from(template)

    def test_foreign_cell_refuses_delta(self):
        """A snapshot whose externals are not the template's (different
        app cell) must refuse rather than emit an unsound delta."""
        spec = FleetSpec(devices_per_cell=2, shard_size=2,
                         policies=("rchdroid",))
        template = capture_template(spec, 0)
        from repro.fleet.run import build_template

        stranger = SystemSnapshot.capture(
            build_template(spec, len(spec.policies)))
        with pytest.raises(SnapshotError, match="forked from"):
            stranger.delta_from(template)


class TestVerifyDeltasMode:
    def test_verify_deltas_leaves_the_report_byte_identical(self):
        spec = FleetSpec(devices_per_cell=4, shard_size=2, faults=FAULTY)
        base = run_fleet(spec).to_json()
        verified = run_fleet(spec, verify_deltas=True).to_json()
        assert verified == base
