"""Fleet executor: shard planning, determinism across execution shapes,
fault injection, and the per-worker template cache."""

import pytest

from repro.engine.snapshots import SnapshotStore
from repro.errors import FleetError
from repro.fleet import (
    FaultPlan,
    FleetSpec,
    NO_FAULTS,
    merge_fleet_results,
    plan_shards,
    run_fleet,
)
from repro.fleet.faults import apply_slow_storage
from repro.fleet.run import (
    _reset_template_cache,
    _run_shard_task,
    capture_template,
    template_cache_stats,
    template_key,
)

SMALL = FleetSpec(devices_per_cell=3, shard_size=2)


class TestFleetSpec:
    def test_cells_are_app_major(self):
        spec = FleetSpec()
        cells = spec.cells()
        assert len(cells) == 9
        assert [policy for _, policy in cells[:3]] == list(spec.policies)
        packages = [app.package for app, _ in cells]
        assert packages[0] == packages[1] == packages[2]

    def test_rejects_unknown_policy(self):
        with pytest.raises(FleetError):
            FleetSpec(policies=("rchdroid", "nope"))

    def test_rejects_empty_cohort(self):
        with pytest.raises(FleetError):
            FleetSpec(devices_per_cell=0)


class TestShardPlan:
    def test_shards_never_span_cells(self):
        spec = FleetSpec(devices_per_cell=5, shard_size=2)
        for shard in plan_shards(spec):
            assert 0 <= shard.start < shard.stop <= spec.devices_per_cell

    def test_plan_covers_every_device_exactly_once(self):
        spec = FleetSpec(devices_per_cell=5, shard_size=2)
        shards = plan_shards(spec)
        per_cell: dict[int, list[int]] = {}
        for shard in shards:
            per_cell.setdefault(shard.cell_index, []).extend(
                range(shard.start, shard.stop))
        for members in per_cell.values():
            assert sorted(members) == list(range(5))

    def test_shard_ids_are_sequential(self):
        shards = plan_shards(FleetSpec(devices_per_cell=5, shard_size=2))
        assert [shard.shard_id for shard in shards] == list(
            range(len(shards)))

    def test_plan_is_independent_of_jobs(self):
        """The plan is a pure function of the spec — there is no jobs
        parameter to pass, which is the point."""
        spec = FleetSpec(devices_per_cell=7, shard_size=3)
        assert plan_shards(spec) == plan_shards(spec)


class TestDeterminism:
    def test_serial_and_sharded_reports_are_byte_identical(self):
        serial = run_fleet(SMALL, jobs=1)
        sharded = run_fleet(SMALL, jobs=4)
        assert serial.to_json() == sharded.to_json()

    def test_resumed_run_merges_byte_identically(self):
        full = run_fleet(SMALL, jobs=1)
        ids = [shard.shard_id for shard in plan_shards(SMALL)]
        half = len(ids) // 2
        first = run_fleet(SMALL, jobs=1, shard_ids=ids[:half])
        second = run_fleet(SMALL, jobs=1, shard_ids=ids[half:])
        merged = merge_fleet_results(first, second)
        assert merged.to_json() == full.to_json()
        # Merge order must not matter either.
        assert merge_fleet_results(second, first).to_json() == full.to_json()

    def test_forked_devices_match_cold_setup(self):
        """The cohort template is a pure optimisation: forking from it
        must be byte-identical to preparing every device from scratch."""
        forked = run_fleet(SMALL, jobs=1)
        cold = run_fleet(SMALL, jobs=1, use_templates=False)
        assert forked.to_json() == cold.to_json()

    def test_different_seeds_differ(self):
        assert (run_fleet(SMALL, jobs=1).to_json()
                != run_fleet(
                    FleetSpec(devices_per_cell=3, shard_size=2, seed=99),
                    jobs=1).to_json())

    def test_result_keeps_no_per_device_data(self):
        result = run_fleet(SMALL, jobs=1)
        assert result.devices == SMALL.total_devices
        for accumulator in result.cohorts:
            assert not hasattr(accumulator, "outcomes")
            assert accumulator.devices == SMALL.devices_per_cell


class TestPartialRuns:
    def test_unknown_shard_ids_are_rejected(self):
        with pytest.raises(FleetError):
            run_fleet(SMALL, jobs=1, shard_ids=[9999])

    def test_overlapping_partials_cannot_merge(self):
        part = run_fleet(SMALL, jobs=1, shard_ids=[0, 1])
        with pytest.raises(FleetError):
            merge_fleet_results(part, part)

    def test_mismatched_specs_cannot_merge(self):
        left = run_fleet(SMALL, jobs=1, shard_ids=[0])
        other_spec = FleetSpec(devices_per_cell=3, shard_size=2, seed=1)
        right = run_fleet(other_spec, jobs=1, shard_ids=[1])
        with pytest.raises(FleetError):
            merge_fleet_results(left, right)


class TestFaults:
    def test_draw_is_deterministic(self):
        plan = FaultPlan.uniform(0.5)
        assert [plan.draw(7, member) for member in range(50)] == [
            plan.draw(7, member) for member in range(50)]

    def test_fraction_zero_and_one(self):
        assert not any(NO_FAULTS.draw(7, member).any
                       for member in range(50))
        everything = FaultPlan.uniform(1.0)
        assert all(everything.draw(7, member).any for member in range(50))

    def test_raising_one_fraction_keeps_other_assignments(self):
        """Unconditional draws: the slow-storage knob must not reshuffle
        which devices get low-memory kills."""
        base = FaultPlan(low_memory_kill_fraction=0.3)
        raised = FaultPlan(low_memory_kill_fraction=0.3,
                           slow_storage_fraction=0.9)
        for member in range(100):
            assert (base.draw(7, member).low_memory_kill
                    == raised.draw(7, member).low_memory_kill)

    def test_slow_storage_multiplies_cost_fields(self):
        from repro.system import AndroidSystem

        system = AndroidSystem()
        base = system.ctx.costs.save_state_base_ms
        apply_slow_storage(system, 4.0)
        assert system.ctx.costs.save_state_base_ms == pytest.approx(4 * base)

    def test_faulted_fleet_differs_and_counts_faulted_devices(self):
        clean = run_fleet(SMALL, jobs=1)
        faulted_spec = FleetSpec(devices_per_cell=3, shard_size=2,
                                 faults=FaultPlan.uniform(0.5))
        faulted = run_fleet(faulted_spec, jobs=1)
        assert faulted.to_json() != clean.to_json()
        assert sum(acc.faulted_devices for acc in faulted.cohorts) > 0
        assert all(acc.faulted_devices == 0 for acc in clean.cohorts)

    def test_fault_assignment_is_shared_across_cells(self):
        """Device i carries the same faults in every cohort, so faulted
        counts agree cell-to-cell."""
        spec = FleetSpec(devices_per_cell=4, shard_size=2,
                         faults=FaultPlan.uniform(0.5))
        result = run_fleet(spec, jobs=1)
        counts = {acc.faulted_devices for acc in result.cohorts}
        assert len(counts) == 1


class TestWorkerTemplateCache:
    def test_template_bytes_are_read_from_disk_once_per_worker(
            self, tmp_path):
        """Satellite: a worker restores a cohort's template from disk
        once, then serves every later shard of that cohort from its
        in-process cache."""
        spec = FleetSpec(devices_per_cell=4, shard_size=2)
        key = template_key(spec, 0)
        SnapshotStore(root=tmp_path).put(key, capture_template(spec, 0))

        _reset_template_cache()
        try:
            shards = [shard for shard in plan_shards(spec)
                      if shard.cell_index == 0]
            assert len(shards) == 2
            for shard in shards:
                _run_shard_task((spec, shard, str(tmp_path), key, None))
            stats = template_cache_stats()
            assert stats["templates_cached"] == 1
            assert stats["disk_reads"] == 1
            assert stats["rebuilds"] == 0
        finally:
            _reset_template_cache()

    def test_missing_template_rebuilds_cold(self, tmp_path):
        """A worker that cannot find its template on disk treats that as
        a cache miss and rebuilds it from scratch, byte-identically."""
        spec = FleetSpec(devices_per_cell=2, shard_size=2)
        shard = plan_shards(spec)[0]
        key = template_key(spec, shard.cell_index)
        SnapshotStore(root=tmp_path).put(
            key, capture_template(spec, shard.cell_index))
        _reset_template_cache()
        try:
            warm = _run_shard_task((spec, shard, str(tmp_path), key, None))
        finally:
            _reset_template_cache()
        try:
            cold = _run_shard_task(
                (spec, shard, str(tmp_path / "empty"), key, None))
            stats = template_cache_stats()
            assert stats["rebuilds"] == 1
            assert stats["disk_reads"] == 0
        finally:
            _reset_template_cache()
        assert cold.cohort.row() == warm.cohort.row()

    def test_truncated_template_rebuilds_byte_identically(self, tmp_path):
        """Satellite: a cohort template truncated on disk mid-run is a
        miss, not an error — the worker rebuilds cold and the shard's
        results are byte-identical to the intact-template run."""
        spec = FleetSpec(devices_per_cell=4, shard_size=2)
        shard = plan_shards(spec)[0]
        key = template_key(spec, shard.cell_index)
        store = SnapshotStore(root=tmp_path)
        store.put(key, capture_template(spec, shard.cell_index))

        _reset_template_cache()
        try:
            warm = _run_shard_task((spec, shard, str(tmp_path), key, None))
        finally:
            _reset_template_cache()

        # Truncate the template bytes in place, as a crashed coordinator
        # or a mid-write eviction would.
        victim = store._path(key)
        blob = victim.read_bytes()
        victim.write_bytes(blob[: len(blob) // 2])

        try:
            cold = _run_shard_task((spec, shard, str(tmp_path), key, None))
            stats = template_cache_stats()
            assert stats["rebuilds"] == 1
            assert stats["disk_reads"] == 0
        finally:
            _reset_template_cache()
        assert cold.cohort.row() == warm.cohort.row()


class TestReportShape:
    def test_report_contains_cohorts_and_policy_rollups(self):
        report = run_fleet(SMALL, jobs=1).report()
        assert report["fleet"]["devices"] == SMALL.total_devices
        assert len(report["cohorts"]) == 9
        policies = [row["policy"] for row in report["policies"]]
        assert policies == sorted(SMALL.policies)
        rollup_devices = sum(row["devices"] for row in report["policies"])
        assert rollup_devices == SMALL.total_devices

    def test_policies_differ_in_outcomes(self):
        """The fleet is policy-differentiating: stock crashes somewhere,
        rchdroid never does."""
        spec = FleetSpec(devices_per_cell=6, shard_size=4)
        report = run_fleet(spec, jobs=1).report()
        by_policy = {row["policy"]: row for row in report["policies"]}
        assert by_policy["android10"]["crash_rate"] > 0
        assert by_policy["rchdroid"]["crash_rate"] == 0
        assert by_policy["runtimedroid"]["crash_rate"] == 0
        assert (by_policy["runtimedroid"]["handling"]["mean_ms"]
                < by_policy["android10"]["handling"]["mean_ms"])


class TestFleetOracle:
    """Sampled differential oracle folded into the fleet report."""

    RATE = FleetSpec(devices_per_cell=6, shard_size=2, oracle_rate=0.5)

    def test_rate_outside_unit_interval_is_rejected(self):
        from repro.errors import OracleError
        for bad in (-0.1, 1.5, float("nan")):
            with pytest.raises(OracleError):
                FleetSpec(oracle_rate=bad)

    def test_sampling_is_a_pure_function_of_seed_and_member(self):
        from repro.oracle import sampled
        draws = [sampled(7, member, 0.25) for member in range(200)]
        assert draws == [sampled(7, member, 0.25) for member in range(200)]
        assert 0 < sum(draws) < 200

    def test_oracle_section_only_present_when_sampling(self):
        plain = run_fleet(SMALL, jobs=1)
        assert plain.oracle is None
        assert "oracle" not in plain.report()
        sampled_run = run_fleet(self.RATE, jobs=1)
        assert sampled_run.oracle is not None
        section = sampled_run.report()["oracle"]
        assert section["rate"] == 0.5
        assert section["sessions"] > 0
        assert section["verdicts"].get("SIMULATOR_BUG", 0) == 0
        assert section["simulator_bug_details"] == []

    def test_oracle_report_identical_across_jobs(self):
        serial = run_fleet(self.RATE, jobs=1)
        sharded = run_fleet(self.RATE, jobs=4)
        assert serial.to_json() == sharded.to_json()

    def test_oracle_report_survives_resume(self):
        full = run_fleet(self.RATE, jobs=1)
        ids = [shard.shard_id for shard in plan_shards(self.RATE)]
        half = len(ids) // 2
        merged = merge_fleet_results(
            run_fleet(self.RATE, jobs=1, shard_ids=ids[:half]),
            run_fleet(self.RATE, jobs=1, shard_ids=ids[half:]),
        )
        assert merged.to_json() == full.to_json()

    def test_mismatched_oracle_rates_cannot_merge(self):
        left = run_fleet(self.RATE, jobs=1, shard_ids=[0])
        other = FleetSpec(devices_per_cell=6, shard_size=2, oracle_rate=0.25)
        right = run_fleet(other, jobs=1, shard_ids=[1])
        with pytest.raises(FleetError):
            merge_fleet_results(left, right)

    def test_sessions_run_once_per_sampled_app_member_pair(self):
        from repro.oracle import sample_members
        result = run_fleet(self.RATE, jobs=1)
        apps = len(self.RATE.cells()) // len(self.RATE.policies)
        expected = apps * len(sample_members(
            self.RATE.seed, range(self.RATE.devices_per_cell), 0.5))
        assert result.oracle.sessions == expected


class TestSerialBypass:
    """A resolved jobs of 1 must skip the process pool entirely (PR 9):
    no pool spawn, no arena publish, no per-task pickling — and with a
    snapshot_root the bypass still keeps the template store warm for
    long-lived callers like the serve daemon."""

    def test_jobs_1_never_reaches_the_pool(self, monkeypatch):
        import repro.fleet.run as fleet_run

        def boom(*args, **kwargs):
            raise AssertionError("jobs=1 must not enter _run_sharded")

        expected = run_fleet(SMALL, jobs=4).to_json()
        monkeypatch.setattr(fleet_run, "_run_sharded", boom)
        assert run_fleet(SMALL, jobs=1).to_json() == expected

    def test_single_shard_bypasses_even_with_many_jobs(self, monkeypatch):
        import repro.fleet.run as fleet_run

        one_shard = FleetSpec(devices_per_cell=1, shard_size=64,
                              policies=("android10",))
        # One shard per cell, but restrict to one shard total.
        ids = [plan_shards(one_shard)[0].shard_id]
        monkeypatch.setattr(
            fleet_run, "_run_sharded",
            lambda *a, **k: (_ for _ in ()).throw(AssertionError()),
        )
        run_fleet(one_shard, jobs=8, shard_ids=ids)

    def test_bypass_with_snapshot_root_warms_the_store(self, tmp_path):
        _reset_template_cache()
        root = str(tmp_path / "templates")
        first = run_fleet(SMALL, jobs=1, snapshot_root=root)
        assert template_cache_stats()["rebuilds"] > 0

        _reset_template_cache()
        second = run_fleet(SMALL, jobs=1, snapshot_root=root)
        stats = template_cache_stats()
        assert stats["rebuilds"] == 0  # everything came from the store
        assert stats["disk_reads"] > 0
        assert second.to_json() == first.to_json()
        _reset_template_cache()
