"""Migration guard: the IR refactor must not move a single report byte.

These hashes were captured from the pre-``repro.workload`` fleet — the
one that generated scripts as raw op tuples and drove devices with its
own loop.  If either pin breaks, the shared driver (or the generator's
frozen RNG discipline) changed observable behaviour, which silently
re-seeds every committed baseline.  Fix the regression; do not re-pin
without understanding exactly which draw or bookkeeping rule moved.
"""

import hashlib

from repro.fleet import FleetSpec, run_fleet
from repro.workload.library import PHASE_PLANS

#: sha256 of ``run_fleet(FleetSpec(devices_per_cell=3, shard_size=2),
#: jobs=1).to_json()`` before the IR refactor.
SMALL_FLEET_SHA256 = (
    "c3c97f2c1b0438ef9de62741c18f55370a9cf3c3d9902d7cb3c7ca03a900325b"
)

#: sha256 of the ext-fleet experiment report (faults + oracle sampling
#: enabled) before the IR refactor: ``ext_fleet.run(jobs=1).to_json()``.
EXT_FLEET_SHA256 = (
    "349d3feae7f82428bfdd68c2aa032676b81955f5483846e43c67711405926803"
)


def sha256(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


class TestPreRefactorBytes:
    def test_small_fleet_report_is_pinned(self):
        spec = FleetSpec(devices_per_cell=3, shard_size=2)
        assert sha256(run_fleet(spec, jobs=1).to_json()) == \
            SMALL_FLEET_SHA256

    def test_ext_fleet_report_is_pinned(self):
        from repro.harness.experiments import ext_fleet

        assert sha256(ext_fleet.run(jobs=1).to_json()) == EXT_FLEET_SHA256


class TestPhasedDeterminism:
    """Time-varying fleets honour the same byte-identity contract."""

    def test_identical_across_job_counts(self):
        spec = FleetSpec(devices_per_cell=3, shard_size=2,
                         phases=PHASE_PLANS["rotation-storm"])
        serial = run_fleet(spec, jobs=1).to_json()
        assert run_fleet(spec, jobs=4).to_json() == serial

    def test_identical_across_checkpoint_resume(self, tmp_path):
        spec = FleetSpec(devices_per_cell=3, shard_size=2,
                         phases=PHASE_PLANS["update-wave"])
        base = run_fleet(spec, jobs=1).to_json()
        path = str(tmp_path / "phased.ckpt")
        run_fleet(spec, checkpoint_path=path, checkpoint_every=1)
        resumed = run_fleet(spec, checkpoint_path=path)
        assert resumed.to_json() == base

    def test_phases_change_the_report(self):
        spec = FleetSpec(devices_per_cell=3, shard_size=2)
        phased = FleetSpec(devices_per_cell=3, shard_size=2,
                           phases=PHASE_PLANS["rotation-storm"])
        assert run_fleet(phased, jobs=1).to_json() != \
            run_fleet(spec, jobs=1).to_json()
