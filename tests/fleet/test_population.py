"""Population generator: determinism, coverage, corpus validity."""

from repro.fleet.population import (
    DEFAULT_POPULATION,
    LOCALES,
    PopulationSpec,
    device_script,
    fleet_corpus,
    is_config_change,
    template_value,
)


class TestDeviceScript:
    def test_same_seed_same_member_is_identical(self):
        first = device_script(DEFAULT_POPULATION, 0x5EED, 7)
        second = device_script(DEFAULT_POPULATION, 0x5EED, 7)
        assert first == second

    def test_members_differ(self):
        scripts = {device_script(DEFAULT_POPULATION, 0x5EED, member)
                   for member in range(20)}
        assert len(scripts) > 1

    def test_seeds_differ(self):
        assert (device_script(DEFAULT_POPULATION, 1, 0)
                != device_script(DEFAULT_POPULATION, 2, 0))

    def test_every_script_has_a_config_change(self):
        for member in range(100):
            script = device_script(DEFAULT_POPULATION, 0x5EED, member)
            assert any(is_config_change(op) for op in script)

    def test_every_op_is_followed_by_a_wait(self):
        for member in range(20):
            script = device_script(DEFAULT_POPULATION, 0x5EED, member)
            for index, op in enumerate(script):
                if op[0] != "wait":
                    assert script[index + 1][0] == "wait"

    def test_op_count_respects_population_bounds(self):
        population = PopulationSpec(min_ops=3, max_ops=5)
        for member in range(50):
            script = device_script(population, 0x5EED, member)
            real_ops = [op for op in script if op[0] != "wait"]
            # +1: a rotate is appended when no config change was drawn.
            assert 3 <= len(real_ops) <= 6

    def test_population_covers_all_op_kinds(self):
        kinds = {
            op[0]
            for member in range(200)
            for op in device_script(DEFAULT_POPULATION, 0x5EED, member)
        }
        assert {"rotate", "resize", "locale", "night",
                "write", "async", "kill", "wait"} <= kinds

    def test_locale_ops_draw_from_the_locale_set(self):
        for member in range(100):
            for op in device_script(DEFAULT_POPULATION, 0x5EED, member):
                if op[0] == "locale":
                    assert op[1] in LOCALES


class TestCorpus:
    def test_specs_validate(self):
        for app in fleet_corpus():
            app.validate()

    def test_packages_are_unique(self):
        packages = [app.package for app in fleet_corpus()]
        assert len(set(packages)) == len(packages)

    def test_corpus_covers_the_durability_ladder(self):
        from repro.apps.dsl import StorageKind

        kinds = {slot.storage for app in fleet_corpus()
                 for slot in app.slots}
        assert {StorageKind.VIEW_ATTR, StorageKind.BARE_FIELD,
                StorageKind.CUSTOM_SAVED, StorageKind.APPLICATION,
                StorageKind.PERSISTED} <= kinds

    def test_corpus_has_async_and_dialog_crash_modes(self):
        scripts = [app.async_script for app in fleet_corpus()
                   if app.async_script is not None]
        assert scripts
        assert any(script.shows_dialog for script in scripts)

    def test_template_values_are_slot_specific(self):
        assert template_value("note") != template_value("draft")
