"""Tests for the experiment registry and the cheap experiments.

The heavyweight experiments (Figs. 7/8/11/14, Tables 3/5) are exercised
by the benchmark harness under ``benchmarks/``; here we check the
registry is complete and the fast experiments produce the paper's shape.
"""

import pytest

from repro.harness.experiments import REGISTRY
from repro.harness.experiments import (
    fig9,
    fig10,
    fig12,
    sec57_deployment,
    table2,
)


def test_registry_covers_every_table_and_figure():
    assert set(REGISTRY) == {
        "table2", "table3", "table5", "fig7", "fig8", "fig9", "fig10",
        "fig11", "fig12", "fig13", "fig14", "sec5.6-energy", "sec5.7-deployment",
        "ext-fleet", "ext-fragments", "ext-oracle", "ext-probes",
        "ext-robustness", "ext-sessions",
    }


class TestTable2:
    def test_patch_total_is_348_loc(self):
        result = table2.run()
        assert result.total_loc == 348

    def test_every_patched_class_has_a_counterpart(self):
        result = table2.run()
        assert result.all_symbols_exist

    def test_report_renders(self):
        assert "348" in table2.format_report(table2.run())


class TestFig9:
    def test_shapes(self):
        result = fig9.run()
        assert result.android10.crashed
        assert result.android10_crashed_at_return
        assert result.android10_heap_after_crash == 0.0
        assert not result.rchdroid.crashed
        assert result.rchdroid_heap_after_return > 0.0

    def test_rchdroid_cpu_drops_on_second_change(self):
        result = fig9.run()
        first, second = result.peaks(result.rchdroid)
        assert second < first

    def test_rchdroid_paths(self):
        result = fig9.run()
        assert [p for _, p in result.rchdroid.handling] == ["init", "flip"]


class TestFig10:
    @pytest.fixture(scope="class")
    def result(self):
        return fig10.run()

    def test_rchdroid_always_beats_android10(self, result):
        for point in result.points:
            assert point.rchdroid_ms < point.android10_ms

    def test_rchdroid_flip_is_flat(self, result):
        flips = [p.rchdroid_ms for p in result.points]
        assert max(flips) / min(flips) < 1.08

    def test_init_grows_linearly(self, result):
        inits = [p.rchdroid_init_ms for p in result.points]
        assert inits == sorted(inits)
        assert result.point_at(1).rchdroid_init_ms == pytest.approx(154.6, rel=0.03)
        assert result.point_at(32).rchdroid_init_ms == pytest.approx(180.2, rel=0.03)

    def test_migration_grows_linearly_below_restart(self, result):
        migrations = [p.migration_ms for p in result.points]
        assert migrations == sorted(migrations)
        assert result.point_at(1).migration_ms == pytest.approx(8.6, rel=0.05)
        assert result.point_at(16).migration_ms == pytest.approx(20.2, rel=0.05)
        for point in result.points:
            assert point.migration_ms < point.android10_ms


class TestFig12:
    def test_ordering_holds(self):
        result = fig12.run()
        assert result.ordering_holds
        assert result.rchdroid_modifications_loc == 0

    def test_runtimedroid_needs_hundreds_of_loc(self):
        result = fig12.run()
        assert all(row.runtimedroid_mod_loc >= 760 for row in result.rows)


class TestDeployment:
    def test_rchdroid_flash_is_fixed_cost(self):
        result = sec57_deployment.run()
        assert result.rchdroid_total_ms == pytest.approx(92_870.0)

    def test_patch_range_overlaps_paper(self):
        result = sec57_deployment.run()
        assert result.runtimedroid_min_ms == pytest.approx(12_867, rel=0.05)
        assert result.runtimedroid_max_ms > 100_000

    def test_crossover_is_small(self):
        result = sec57_deployment.run()
        assert result.rchdroid_cheaper_beyond_apps <= 3
