"""Unit tests for report rendering."""

from repro.harness.report import (
    Comparison,
    render_comparisons,
    render_table,
    series_block,
)


class TestRenderTable:
    def test_columns_are_aligned(self):
        out = render_table(["a", "bb"], [[1, 2], [333, 4]])
        lines = out.splitlines()
        assert lines[0].startswith("a    bb")
        assert lines[2].startswith("1    2")
        assert lines[3].startswith("333  4")

    def test_title_is_first_line(self):
        out = render_table(["x"], [[1]], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_empty_rows_render_header_only(self):
        out = render_table(["col"], [])
        assert "col" in out


class TestComparison:
    def test_relative_error(self):
        comparison = Comparison("m", paper=100.0, measured=110.0)
        assert comparison.relative_error == 0.1

    def test_zero_paper_value(self):
        assert Comparison("m", 0.0, 0.0).relative_error == 0.0
        assert Comparison("m", 0.0, 1.0).relative_error == float("inf")

    def test_render_comparisons_includes_units(self):
        out = render_comparisons(
            [Comparison("latency", 141.8, 140.2, "ms")], "check"
        )
        assert "141.8 ms" in out
        assert "140.20 ms" in out
        assert "1.1%" in out


class TestSeriesBlock:
    def test_pairs_rendered(self):
        out = series_block("heap", [1, 2], [10.0, 20.0], "MB")
        assert "series: heap [MB]" in out
        assert "x=         1" in out
        assert "y=     20.00" in out
