"""Unit tests for the scenario runners."""

import pytest

from repro import Android10Policy, RCHDroidPolicy
from repro.apps import make_benchmark_app
from repro.apps.appset27 import build_appset27
from repro.apps.dsl import IssueKind
from repro.harness.runner import measure_handling, run_issue_scenario


class TestIssueScenario:
    def test_benchmark_app_crashes_on_stock(self):
        app = make_benchmark_app(2)
        verdict = run_issue_scenario(Android10Policy, app)
        assert verdict.crashed
        assert verdict.crash_exception == "NullPointerException"
        assert verdict.issue_observed
        assert not verdict.issue_solved

    def test_benchmark_app_solved_on_rchdroid(self):
        app = make_benchmark_app(2)
        verdict = run_issue_scenario(RCHDroidPolicy, app)
        assert not verdict.crashed
        assert verdict.async_update_visible is True
        assert verdict.issue_solved

    def test_view_state_loss_app_verdicts(self):
        app = next(
            a for a in build_appset27()
            if a.issue is IssueKind.VIEW_STATE_LOSS and a.async_script is None
        )
        stock = run_issue_scenario(Android10Policy, app)
        assert not stock.crashed
        assert not stock.state_preserved
        rchdroid = run_issue_scenario(RCHDroidPolicy, app)
        assert rchdroid.state_preserved

    def test_bare_field_app_unsolved_under_both(self):
        app = next(
            a for a in build_appset27()
            if a.issue is IssueKind.BARE_FIELD_LOSS
        )
        assert not run_issue_scenario(Android10Policy, app).issue_solved
        assert not run_issue_scenario(RCHDroidPolicy, app).issue_solved

    def test_verdict_metadata(self):
        app = make_benchmark_app(2)
        verdict = run_issue_scenario(RCHDroidPolicy, app)
        assert verdict.package == app.package
        assert verdict.policy == "rchdroid"
        assert verdict.issue is IssueKind.ASYNC_CRASH
        assert verdict.handling  # at least one episode recorded


class TestMeasureHandling:
    def test_episode_count_matches_rotations(self):
        app = make_benchmark_app(2)
        measurement = measure_handling(Android10Policy, app, rotations=3)
        assert len(measurement.episodes) == 3

    def test_rchdroid_steady_state_excludes_init(self):
        app = make_benchmark_app(2)
        measurement = measure_handling(RCHDroidPolicy, app, rotations=4)
        paths = [path for _, path in measurement.episodes]
        assert paths == ["init", "flip", "flip", "flip"]
        assert measurement.steady_state_ms < measurement.first_episode_ms
        assert measurement.times_for("flip") == [
            ms for ms, p in measurement.episodes if p == "flip"
        ]

    def test_memory_captured_after_rotations(self):
        app = make_benchmark_app(2)
        stock = measure_handling(Android10Policy, app)
        rchdroid = measure_handling(RCHDroidPolicy, app)
        assert rchdroid.memory_after_mb > stock.memory_after_mb

    def test_single_episode_fallback(self):
        app = make_benchmark_app(2)
        measurement = measure_handling(RCHDroidPolicy, app, rotations=1)
        assert measurement.steady_state_ms == measurement.first_episode_ms

    def test_deterministic(self):
        app = make_benchmark_app(2)
        a = measure_handling(RCHDroidPolicy, app, seed=3)
        b = measure_handling(RCHDroidPolicy, make_benchmark_app(2), seed=3)
        assert a.episodes == b.episodes
