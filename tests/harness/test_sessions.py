"""Unit tests for the day-in-the-life session driver."""

import pytest

from repro import Android10Policy, RCHDroidPolicy
from repro.android.views.inflate import ViewSpec
from repro.apps.dsl import AppSpec, StateSlot, StorageKind, \
    two_orientation_resources
from repro.harness.sessions import UsageSpec, run_session


def session_app() -> AppSpec:
    return AppSpec(
        package="sess.app", label="s",
        resources=two_orientation_resources(
            "main", [ViewSpec("TextView", view_id=10)]
        ),
        slots=(StateSlot("note", StorageKind.VIEW_ATTR,
                         view_id=10, attr="text"),),
    )


def test_rotation_count_matches_cadence():
    spec = UsageSpec(duration_min=30.0, rotation_period_min=5.0,
                     rotation_jitter=0.0)
    result = run_session(Android10Policy, session_app(), spec)
    assert result.rotations == 6


def test_stock_every_rotation_is_an_incident():
    spec = UsageSpec(duration_min=20.0)
    result = run_session(Android10Policy, session_app(), spec)
    assert result.incidents == result.rotations > 0


def test_rchdroid_has_zero_incidents():
    spec = UsageSpec(duration_min=20.0)
    result = run_session(RCHDroidPolicy, session_app(), spec)
    assert result.rotations > 0
    assert result.incidents == 0


def test_handling_time_accumulates():
    spec = UsageSpec(duration_min=20.0)
    result = run_session(Android10Policy, session_app(), spec)
    assert result.handling_total_ms > 0


def test_session_is_deterministic():
    spec = UsageSpec(duration_min=15.0)
    a = run_session(RCHDroidPolicy, session_app(), spec, seed=9)
    b = run_session(RCHDroidPolicy, session_app(), spec, seed=9)
    assert (a.rotations, a.incidents, a.handling_total_ms) == (
        b.rotations, b.incidents, b.handling_total_ms
    )


def test_appless_slots_are_tolerated():
    app = AppSpec(
        package="sess.noslot", label="n",
        resources=two_orientation_resources(
            "main", [ViewSpec("TextView", view_id=10)]
        ),
    )
    result = run_session(Android10Policy, app, UsageSpec(duration_min=12.0))
    assert result.incidents == 0
    assert result.rotations > 0
