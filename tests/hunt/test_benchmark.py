"""The pinned 1,000-app benchmark: the paper's ordering must emerge.

Transparent runtime change handling (RuntimeDroid / RCH) exists because
restart-based handling loses state and crashes apps that mishandle the
restart.  Hunting a 1,000-app taxonomy corpus must therefore reproduce
the paper's policy ordering, and this module pins it:

* stock Android confirms at least 90% of its predicted failures;
* RCHDroid confirms every bare-field / missing-onSave prediction but is
  never predicted (nor observed) to fail on pure view state or async
  crashes — migration handles those;
* RuntimeDroid, the no-loss policy, confirms nothing and exhibits
  nothing — any failure under it is a ``SIMULATOR_BUG``, and the run
  must report zero;
* every confirmed finding ships a shrunk repro that still reproduces on
  a fresh system (the in-run replay check) and is locally 1-minimal.

One hunt is shared by every assertion; at ~1,300 suspicions this is the
most expensive test in the suite, which is exactly its job.
"""

import pytest

from repro.hunt.search import HuntSettings, run_hunt

CORPUS_APPS = 1000


@pytest.fixture(scope="module")
def report():
    return run_hunt(HuntSettings(apps=CORPUS_APPS, jobs=1, cache=False))


def test_corpus_yields_a_substantial_suspicion_load(report):
    assert report.app_count == CORPUS_APPS
    assert report.suspicions >= 1000
    assert report.apps_with_suspicions >= 500


def test_stock_android_recall_meets_the_floor(report):
    row = report.by_policy["android10"]
    assert row["predicted"] >= 1000
    assert report.recall("android10") >= 0.9


def test_rchdroid_fails_only_where_no_save_path_exists(report):
    """RCHDroid's migration cures view-state loss and async crashes;
    only unsaved non-view state (bare fields, missing onSave) remains."""
    row = report.by_policy["rchdroid"]
    assert 0 < row["predicted"] < report.by_policy["android10"]["predicted"]
    assert report.recall("rchdroid") >= 0.9
    assert row["observed_crashes"] == 0
    rch_rules = {f["rule"] for f in report.findings
                 if f["policy"] == "rchdroid"}
    assert rch_rules <= {"bare-field-state", "missing-on-save"}


def test_runtimedroid_confirms_nothing(report):
    row = report.by_policy["runtimedroid"]
    assert row["predicted"] == 0
    assert row["confirmed"] == 0
    assert row["observed_losses"] == 0
    assert row["observed_crashes"] == 0


def test_zero_simulator_bugs(report):
    assert report.clean
    assert report.simulator_bugs == []


def test_policy_ordering_matches_the_paper(report):
    """Confirmed failure counts must order stock > RCHDroid > RuntimeDroid."""
    confirmed = {p: report.by_policy[p]["confirmed"]
                 for p in ("android10", "rchdroid", "runtimedroid")}
    assert confirmed["android10"] > confirmed["rchdroid"]
    assert confirmed["rchdroid"] > confirmed["runtimedroid"]
    assert confirmed["runtimedroid"] == 0


def test_every_finding_is_shrunk_verified_and_minimal(report):
    assert len(report.findings) == sum(
        row["confirmed"] for row in report.by_policy.values()
    )
    for finding in report.findings:
        assert finding["shrunk"], finding
        assert finding["shrunk_minimal"], finding
        assert len(finding["shrunk"]) <= len(finding["script"])


def test_minimal_repros_match_driver_semantics(report):
    """Loss repros reduce to the bare configuration change; crash repros
    keep exactly the async trigger plus the change."""
    for finding in report.findings:
        ops = [op[0] for op in finding["shrunk"]]
        if finding["expects"] == "loss":
            assert "rotate" in ops or "resize" in ops or "night" in ops
        else:
            assert "async" in ops
