"""Determinism and coverage of the taxonomy-driven app generator."""

from repro.apps.dsl import IssueKind
from repro.engine.fingerprint import fingerprint
from repro.hunt.generator import (
    DEFAULT_CORPUS_SEED,
    generate_app,
    generate_corpus,
)


class TestDeterminism:
    def test_same_seed_and_index_is_byte_identical(self):
        first = generate_app(DEFAULT_CORPUS_SEED, 17)
        second = generate_app(DEFAULT_CORPUS_SEED, 17)
        assert fingerprint(first) == fingerprint(second)
        assert first.package == second.package
        assert first.issue is second.issue

    def test_corpus_regenerates_identically(self):
        first = generate_corpus(DEFAULT_CORPUS_SEED, 40)
        second = generate_corpus(DEFAULT_CORPUS_SEED, 40)
        assert ([fingerprint(app) for app in first]
                == [fingerprint(app) for app in second])

    def test_adjacent_indices_are_independent(self):
        """Generating app i alone equals app i of the full corpus: each
        index forks its own rng stream, so corpus slicing, sharding, and
        regeneration never shift neighbours."""
        corpus = generate_corpus(DEFAULT_CORPUS_SEED, 10)
        for index in (0, 3, 9):
            alone = generate_app(DEFAULT_CORPUS_SEED, index)
            assert fingerprint(alone) == fingerprint(corpus[index])

    def test_different_seeds_diverge(self):
        assert (fingerprint(generate_app(1, 0))
                != fingerprint(generate_app(2, 0)))


class TestCorpusShape:
    def test_packages_are_unique_and_indexed(self):
        corpus = generate_corpus(DEFAULT_CORPUS_SEED, 25)
        packages = [app.package for app in corpus]
        assert len(set(packages)) == 25
        assert packages[7] == "hunt.app00007"

    def test_every_issue_kind_appears(self):
        """The taxonomy ladder covers all generated issue kinds within a
        modest corpus — no dimension is starved."""
        corpus = generate_corpus(DEFAULT_CORPUS_SEED, 200)
        kinds = {app.issue for app in corpus}
        assert {
            IssueKind.NONE,
            IssueKind.SELF_HANDLED,
            IssueKind.BARE_FIELD_LOSS,
            IssueKind.VIEW_STATE_LOSS,
            IssueKind.ASYNC_CRASH,
            IssueKind.ASYNC_DIALOG_LEAK,
        } <= kinds

    def test_specs_validate(self):
        for app in generate_corpus(DEFAULT_CORPUS_SEED, 15):
            app.validate()

    def test_self_handled_apps_declare_the_flag(self):
        corpus = generate_corpus(DEFAULT_CORPUS_SEED, 200)
        flagged = [app for app in corpus
                   if app.issue is IssueKind.SELF_HANDLED]
        assert flagged
        assert all(app.handles_config_changes for app in flagged)
