"""Unit tests for the static hunting rules and Suspicion records."""

import dataclasses

import pytest

from repro.apps.dsl import IssueKind, StorageKind
from repro.errors import HuntError
from repro.hunt.generator import DEFAULT_CORPUS_SEED, generate_corpus
from repro.hunt.rules import (
    DEFAULT_RULES,
    BareFieldRule,
    MidMigrationWriteRule,
    MissingOnSaveRule,
    Rule,
    StaleAsyncRule,
    Suspicion,
    inspect_corpus,
    rank_suspicions,
    rule_catalog,
)


def _corpus(count=120):
    return generate_corpus(DEFAULT_CORPUS_SEED, count)


class TestSuspicionRecord:
    def test_loss_without_a_slot_is_a_hunt_error(self):
        with pytest.raises(HuntError, match="names no slot"):
            Suspicion(rule="r", package="p", severity=1,
                      expects="loss", policies=("android10",),
                      ops=(("rotate",),))

    def test_unknown_failure_mode_is_a_hunt_error(self):
        with pytest.raises(HuntError, match="expects"):
            Suspicion(rule="r", package="p", severity=1,
                      expects="hang", policies=("android10",),
                      ops=(("rotate",),))

    def test_ranking_is_severity_first_then_stable(self):
        crash = Suspicion(rule="a", package="z", severity=4,
                          expects="crash", policies=("android10",),
                          ops=(("rotate",),))
        loss = Suspicion(rule="b", package="a", severity=1,
                         expects="loss", policies=("android10",),
                         ops=(("rotate",),), slot="slot0")
        assert rank_suspicions([loss, crash]) == [crash, loss]


class TestBuiltinRules:
    def test_catalog_names_every_default_rule(self):
        names = {row["name"] for row in rule_catalog()}
        assert names == {rule.name for rule in DEFAULT_RULES}
        assert all(row["description"] for row in rule_catalog())

    def test_self_handled_apps_raise_no_suspicions(self):
        handled = [app for app in _corpus()
                   if app.handles_config_changes]
        assert handled
        assert inspect_corpus(handled) == []

    def test_bare_field_rule_names_the_bare_slot(self):
        for app in _corpus():
            for suspicion in BareFieldRule().inspect(app):
                slot = next(s for s in app.slots
                            if s.name == suspicion.slot)
                assert slot.storage is StorageKind.BARE_FIELD
                assert suspicion.expects == "loss"
                assert set(suspicion.policies) == {
                    "android10", "rchdroid"}

    def test_missing_on_save_is_gated_on_the_hook(self):
        rule = MissingOnSaveRule()
        for app in _corpus():
            if app.implements_on_save:
                assert rule.inspect(app) == []

    def test_stale_async_rule_predicts_stock_crashes(self):
        fired = 0
        for app in _corpus():
            for suspicion in StaleAsyncRule().inspect(app):
                fired += 1
                assert suspicion.expects == "crash"
                assert suspicion.policies == ("android10",)
                assert suspicion.ops[0] == ("async",)
        assert fired

    def test_mid_migration_rule_skips_auto_saved_widgets(self):
        """EditText.text is auto-saved by the stock bundle; the rule
        must only flag view attributes the save function skips."""
        rule = MidMigrationWriteRule()
        for app in _corpus():
            for suspicion in rule.inspect(app):
                slot = next(s for s in app.slots
                            if s.name == suspicion.slot)
                assert slot.storage is StorageKind.VIEW_ATTR
                assert not Rule.auto_saved(app, slot)

    def test_rules_never_read_ground_truth(self):
        """Predictions come from structure alone: erasing the generator's
        issue label changes nothing."""
        corpus = _corpus(40)
        blinded = [dataclasses.replace(app, issue=IssueKind.NONE)
                   for app in corpus]
        plain = [(s.rule, s.package, s.expects, s.slot)
                 for s in inspect_corpus(corpus)]
        blind = [(s.rule, s.package, s.expects, s.slot)
                 for s in inspect_corpus(blinded)]
        assert plain == blind


class TestCustomRules:
    def test_a_custom_rule_joins_the_inspection(self):
        class EveryAppRule(Rule):
            name = "everything-is-sus"
            severity = 9

            def inspect(self, app):
                return [Suspicion(
                    rule=self.name, package=app.package,
                    severity=self.severity, expects="crash",
                    policies=("android10",), ops=(("rotate",),),
                )]

        corpus = _corpus(5)
        suspicions = inspect_corpus(corpus, (*DEFAULT_RULES,
                                             EveryAppRule()))
        custom = [s for s in suspicions if s.rule == "everything-is-sus"]
        assert len(custom) == 5
        # Severity 9 outranks every built-in prediction.
        assert suspicions[0].rule == "everything-is-sus"
