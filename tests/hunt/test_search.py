"""Search-stage tests: confirmation, shrinking, determinism, settings."""

import pytest

from repro.errors import HuntError
from repro.hunt.rules import Suspicion
from repro.hunt.search import HuntSettings, candidate_scripts, run_hunt


@pytest.fixture(scope="module")
def small_report():
    """One 20-app hunt, shared across the module's read-only asserts."""
    return run_hunt(HuntSettings(apps=20, jobs=1, cache=False))


class TestHuntSettings:
    def test_corpus_size_floor(self):
        with pytest.raises(HuntError, match="corpus size"):
            HuntSettings(apps=0)

    def test_empty_policy_set_is_rejected(self):
        with pytest.raises(HuntError, match="at least one policy"):
            HuntSettings(policies=())

    def test_unknown_policy_is_rejected_with_known_list(self):
        with pytest.raises(HuntError, match="rchdroid"):
            HuntSettings(policies=("nosuch",))

    def test_duplicate_policy_is_rejected(self):
        with pytest.raises(HuntError, match="duplicate"):
            HuntSettings(policies=("android10", "android10"))


class TestCandidateEscalation:
    def test_ladder_shares_the_rule_ops_as_prefix(self):
        suspicion = Suspicion(
            rule="r", package="p", severity=1, expects="crash",
            policies=("android10",), ops=(("async",), ("rotate",)),
        )
        ladder = candidate_scripts(suspicion)
        assert ladder[0] == suspicion.ops
        assert all(c[:len(suspicion.ops)] == suspicion.ops
                   for c in ladder)
        assert len(ladder) >= 2


class TestSmallHunt:
    def test_predictions_are_confirmed(self, small_report):
        for policy in ("android10", "rchdroid"):
            row = small_report.by_policy[policy]
            assert row["predicted"] > 0
            assert row["confirmed"] == row["predicted"]
            assert small_report.recall(policy) == 1.0

    def test_runtimedroid_control_stays_silent(self, small_report):
        row = small_report.by_policy["runtimedroid"]
        assert row["predicted"] == 0
        assert row["observed_losses"] == 0
        assert row["observed_crashes"] == 0
        assert small_report.recall("runtimedroid") is None

    def test_no_simulator_bugs(self, small_report):
        assert small_report.clean
        assert small_report.simulator_bugs == []

    def test_every_finding_ships_a_minimal_repro(self, small_report):
        assert small_report.findings
        for finding in small_report.findings:
            assert finding["shrunk"]
            assert finding["shrunk_minimal"]
            assert len(finding["shrunk"]) <= len(finding["script"])
            if finding["expects"] == "loss":
                assert finding["slot"] in finding["lost_slots"]
            else:
                assert finding["crash_kinds"]

    def test_findings_are_canonically_ordered(self, small_report):
        keys = [(f["package"], f["rule"], f["policy"])
                for f in small_report.to_dict()["findings"]]
        assert keys == sorted(keys)


class TestDeterminism:
    def test_rerun_is_byte_identical(self, small_report):
        again = run_hunt(HuntSettings(apps=20, jobs=1, cache=False))
        assert again.to_json() == small_report.to_json()

    def test_job_count_does_not_change_the_report(self, small_report):
        threaded = run_hunt(HuntSettings(apps=20, jobs=2, cache=False))
        assert threaded.to_json() == small_report.to_json()

    def test_policy_subset_hunts_only_those_policies(self):
        report = run_hunt(HuntSettings(
            apps=10, jobs=1, cache=False,
            policies=("android10", "runtimedroid"),
        ))
        assert set(report.by_policy) == {"android10", "runtimedroid"}
        assert report.clean
