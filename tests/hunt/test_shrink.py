"""Delta-debugging unit tests against synthetic predicates."""

import pytest

from repro.errors import HuntError
from repro.hunt.shrink import ScriptShrinker, shrink_finding


def _ops(n):
    return tuple(("op", i) for i in range(n))


def _subset_predicate(required):
    """Reproduces iff every required op survives in the candidate."""
    def reproduces(script):
        return set(required) <= set(script)
    return reproduces


class TestShrinkFinding:
    @pytest.mark.parametrize("size", [1, 2, 5, 8, 13])
    def test_single_required_op_reduces_to_one(self, size):
        script = _ops(size)
        needed = (script[size // 2],)
        shrunk, probes, minimal = shrink_finding(
            script, _subset_predicate(needed))
        assert shrunk == needed
        assert minimal

    def test_scattered_required_ops_all_survive(self):
        script = _ops(12)
        needed = (script[1], script[6], script[11])
        shrunk, _, minimal = shrink_finding(
            script, _subset_predicate(needed))
        assert set(shrunk) == set(needed)
        assert minimal

    def test_result_is_locally_one_minimal(self):
        script = _ops(9)
        needed = (script[0], script[4])
        predicate = _subset_predicate(needed)
        shrunk, _, minimal = shrink_finding(script, predicate)
        assert minimal
        for i in range(len(shrunk)):
            removed = shrunk[:i] + shrunk[i + 1:]
            assert not predicate(removed)

    def test_wait_gaps_are_halved_to_the_floor(self):
        script = (("write", 0), ("wait", 400.0), ("rotate",))

        def reproduces(candidate):
            return ("write", 0) in candidate and ("rotate",) in candidate

        shrunk, _, minimal = shrink_finding(script, reproduces)
        assert minimal
        assert shrunk == (("write", 0), ("rotate",))

    def test_wait_that_matters_is_only_simplified_while_it_holds(self):
        script = (("rotate",), ("wait", 400.0))

        def reproduces(candidate):
            waits = [op for op in candidate if op[0] == "wait"]
            return (("rotate",) in candidate and waits
                    and waits[0][1] >= 100.0)

        shrunk, _, minimal = shrink_finding(script, reproduces)
        assert minimal
        assert shrunk == (("rotate",), ("wait", 100.0))


class TestScriptShrinkerStateMachine:
    def test_empty_script_is_a_hunt_error(self):
        with pytest.raises(HuntError, match="empty script"):
            ScriptShrinker(())

    def test_wrong_outcome_count_is_a_hunt_error(self):
        shrinker = ScriptShrinker(_ops(4))
        shrinker.candidates()
        with pytest.raises(HuntError, match="outcomes"):
            shrinker.advance([True])

    def test_first_reproducing_candidate_wins(self):
        """Acceptance is by generation order, not by size or by which
        probe finished first — the determinism the report relies on."""
        shrinker = ScriptShrinker(_ops(4))
        candidates = shrinker.candidates()
        shrinker.advance([True] * len(candidates))
        assert shrinker.current == candidates[0]

    def test_probe_count_is_accounted(self):
        script = _ops(6)
        _, probes, _ = shrink_finding(
            script, _subset_predicate((script[2],)))
        assert probes > 0
