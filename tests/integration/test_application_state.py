"""Integration tests: Application-object (process-lifetime) state.

Apps that keep state on the Application object sidestep the restart
problem entirely — one of the reasons 11 of the top-100 apps restart
harmlessly.  The state survives restarts under every policy, but dies
with the process when a crash kills it.
"""

import pytest

from repro import Android10Policy, AndroidSystem, RCHDroidPolicy, \
    RuntimeDroidPolicy
from repro.android.views.inflate import ViewSpec
from repro.apps import make_benchmark_app
from repro.apps.dsl import AppSpec, AsyncScript, StateSlot, StorageKind, \
    two_orientation_resources


def app_with_application_state() -> AppSpec:
    return AppSpec(
        package="appstate.demo", label="a",
        resources=two_orientation_resources(
            "main", [ViewSpec("TextView", view_id=10)]
        ),
        slots=(StateSlot("session", StorageKind.APPLICATION),),
    )


@pytest.mark.parametrize(
    "policy_factory", [Android10Policy, RCHDroidPolicy, RuntimeDroidPolicy]
)
def test_application_state_survives_restart_under_every_policy(policy_factory):
    system = AndroidSystem(policy=policy_factory())
    app = app_with_application_state()
    system.launch(app)
    system.write_slot(app, "session", "token-123")
    system.rotate()
    system.rotate()
    assert system.read_slot(app, "session") == "token-123"


def test_application_state_dies_with_the_process():
    system = AndroidSystem(policy=Android10Policy())
    app = AppSpec(
        package="appstate.crash", label="c",
        resources=two_orientation_resources(
            "main", [ViewSpec("ImageView", view_id=10)]
        ),
        slots=(StateSlot("session", StorageKind.APPLICATION),),
        async_script=AsyncScript("bg", 2_000.0, ((10, "drawable", "x"),)),
    )
    system.launch(app)
    system.write_slot(app, "session", "token-123")
    system.start_async(app)
    system.rotate()
    system.run_until_idle()  # crash kills the process
    assert system.crashed(app.package)
    thread = system.atms.threads[app.package]
    assert not thread.process.alive
    # Process-lifetime state cannot be read back: the process is gone.
    assert system.foreground_activity(app.package) is None


def test_application_state_shared_between_instances():
    """After an RCHDroid init, both the shadow and the sunny instance see
    the same Application object."""
    system = AndroidSystem(policy=RCHDroidPolicy())
    app = app_with_application_state()
    system.launch(app)
    system.rotate()
    thread = system.atms.threads[app.package]
    sunny = system.foreground_activity(app.package)
    shadow = thread.shadow_activity
    sunny.application_state["k"] = "v"
    assert shadow.application_state["k"] == "v"
