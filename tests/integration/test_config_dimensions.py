"""Integration tests for non-rotation configuration changes.

The paper motivates screen rotation, screen resizing, keyboard
attachment, and language switching (Section 1).  All four flow through
the same handling path in the framework; these tests drive each.
"""

import pytest

from repro import Android10Policy, AndroidSystem, RCHDroidPolicy
from repro.apps import make_benchmark_app


@pytest.fixture(params=["rotate", "resize", "locale", "keyboard"])
def trigger(request):
    def fire(system):
        if request.param == "rotate":
            return system.rotate()
        if request.param == "resize":
            # flip between the artifact's two wm sizes
            if system.atms.config.width_px == 1920:
                return system.resize(1080, 1920)
            return system.resize(1920, 1080)
        if request.param == "locale":
            new = "fr" if system.atms.config.locale == "en" else "en"
            return system.set_locale(new)
        return system.attach_keyboard(
            not system.atms.config.keyboard_attached
        )

    return fire


def test_stock_restarts_on_every_dimension(trigger):
    system = AndroidSystem(policy=Android10Policy())
    app = make_benchmark_app(2)
    system.launch(app)
    old = system.foreground_activity(app.package)
    assert trigger(system) == "relaunch"
    assert old.destroyed


def test_rchdroid_shadows_on_every_dimension(trigger):
    system = AndroidSystem(policy=RCHDroidPolicy())
    app = make_benchmark_app(2)
    system.launch(app)
    old = system.foreground_activity(app.package)
    assert trigger(system) == "init"
    assert old.alive
    assert trigger(system) == "flip"


def test_rchdroid_preserves_state_on_every_dimension(trigger):
    system = AndroidSystem(policy=RCHDroidPolicy())
    app = make_benchmark_app(2)
    system.launch(app)
    system.write_slot(app, "first_drawable", "kept")
    trigger(system)
    assert system.read_slot(app, "first_drawable") == "kept"


def test_wm_size_reset_cycle_matches_artifact():
    """The artifact's trigger: wm size 1080x1920 then wm size reset."""
    system = AndroidSystem(policy=RCHDroidPolicy())
    app = make_benchmark_app(4)
    system.launch(app)
    assert system.resize(1080, 1920) == "init"
    assert system.resize(1920, 1080) == "flip"
    assert len(system.handling_times()) == 2
