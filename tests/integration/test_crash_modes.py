"""Integration tests for the paper's crash modes (Section 2.3).

App crash (NullPointer), window leak (WindowLeaked), poor responsiveness
(UI frozen during handling), and state loss — each must emerge from the
framework under stock Android and be absent (or bounded) under RCHDroid.
"""

import pytest

from repro import Android10Policy, AndroidSystem, RCHDroidPolicy
from repro.android.views.inflate import ViewSpec
from repro.apps import make_benchmark_app
from repro.apps.dsl import AppSpec, AsyncScript, two_orientation_resources


def dialog_app():
    """An app whose async completion shows a dialog (WindowLeaked mode)."""
    return AppSpec(
        package="crash.dialog",
        label="DialogApp",
        resources=two_orientation_resources(
            "main", [ViewSpec("TextView", view_id=10)]
        ),
        async_script=AsyncScript("show-result", 2_000.0, (), shows_dialog=True),
    )


class TestNullPointerMode:
    def test_stock_crash_is_nullpointer(self):
        system = AndroidSystem(policy=Android10Policy())
        app = make_benchmark_app(2)
        system.launch(app)
        system.start_async(app)
        system.rotate()
        system.run_until_idle()
        assert system.ctx.recorder.crashes[0].exception == "NullPointerException"

    def test_crash_only_if_task_outlives_change(self):
        """Task completing *before* the change is harmless."""
        system = AndroidSystem(policy=Android10Policy())
        app = make_benchmark_app(2)
        system.launch(app)
        system.start_async(app)
        system.run_until_idle()  # task completes first
        system.rotate()
        assert not system.crashed(app.package)


class TestWindowLeakMode:
    def test_stock_dialog_after_restart_leaks_window(self):
        system = AndroidSystem(policy=Android10Policy())
        app = dialog_app()
        system.launch(app)
        system.start_async(app)
        system.rotate()
        system.run_until_idle()
        assert system.crashed(app.package)
        assert (
            system.ctx.recorder.crashes[0].exception == "WindowLeakedException"
        )

    def test_rchdroid_dialog_attaches_to_live_shadow(self):
        system = AndroidSystem(policy=RCHDroidPolicy())
        app = dialog_app()
        system.launch(app)
        system.start_async(app)
        system.rotate()
        system.run_until_idle()
        assert not system.crashed(app.package)


class TestResponsiveness:
    def test_rchdroid_steady_state_blocks_ui_for_less_time(self):
        """Poor responsiveness: the UI is frozen for the handling time;
        RCHDroid's flip freezes it for less."""
        stock = AndroidSystem(policy=Android10Policy())
        app_a = make_benchmark_app(8)
        stock.launch(app_a)
        stock.rotate()
        stock.rotate()

        rch = AndroidSystem(policy=RCHDroidPolicy())
        app_b = make_benchmark_app(8)
        rch.launch(app_b)
        rch.rotate()
        rch.rotate()
        assert rch.last_handling_ms() < stock.last_handling_ms()


class TestCrashAccounting:
    def test_crash_zeroes_heap_and_kills_task(self):
        system = AndroidSystem(policy=Android10Policy())
        app = make_benchmark_app(2)
        system.launch(app)
        system.start_async(app)
        system.rotate()
        system.run_until_idle()
        assert system.memory_of(app.package) == 0.0
        assert system.atms.stack.find_task(app.package) is None

    def test_crash_timestamp_matches_async_return(self):
        system = AndroidSystem(policy=Android10Policy())
        app = make_benchmark_app(2, async_duration_ms=7_000.0)
        system.launch(app)
        system.start_async(app)
        started = system.now_ms
        system.rotate()
        system.run_until_idle()
        crash = system.ctx.recorder.crashes[0]
        assert crash.when_ms == pytest.approx(started + 7_000.0, abs=300.0)
