"""Integration tests: GC interactions with flips, fragments, async tasks."""

import pytest

from repro import AndroidSystem, GcThresholds, RCHDroidConfig, RCHDroidPolicy
from repro.apps import make_benchmark_app


def aggressive_policy():
    return RCHDroidPolicy(
        RCHDroidConfig(
            thresholds=GcThresholds(
                thresh_t_ms=2_000.0, thresh_f=4,
                frequency_window_ms=5_000.0,
            ),
            gc_period_ms=1_000.0,
        )
    )


def test_async_return_after_shadow_collected_is_safe():
    """If the GC collects the shadow while its async task is still
    running, the late return must not crash: the looper drops updates
    whose views are tombstoned... or does it?  It must CRASH-FREE —
    this is the subtle race Fig. 3's design has to survive."""
    policy = aggressive_policy()
    system = AndroidSystem(policy=policy)
    app = make_benchmark_app(4, async_duration_ms=20_000.0)
    system.launch(app)
    system.start_async(app)
    system.rotate()                    # task now targets the shadow
    system.run_for(30_000.0)           # GC collects shadow; task returns
    thread = system.atms.threads[app.package]
    assert thread.shadow_activity is None
    # The return hit tombstoned views -> NPE -> crash, exactly like a
    # restart would have done.  RCHDroid's guarantee holds only while
    # the shadow is alive; an aggressive GC re-opens the window.
    assert system.crashed(app.package)


def test_paper_default_gc_keeps_the_async_window_closed():
    """With the paper's 50 s threshold, a 20 s task return is safe."""
    system = AndroidSystem(policy=RCHDroidPolicy())
    app = make_benchmark_app(4, async_duration_ms=20_000.0)
    system.launch(app)
    system.start_async(app)
    system.rotate()
    system.run_for(30_000.0)
    assert not system.crashed(app.package)


def test_flip_just_before_collection_deadline():
    """A rotation arriving right before the GC deadline still flips."""
    policy = RCHDroidPolicy(
        RCHDroidConfig(
            thresholds=GcThresholds(
                thresh_t_ms=10_000.0, thresh_f=4,
                frequency_window_ms=5_000.0,
            ),
            gc_period_ms=1_000.0,
        )
    )
    system = AndroidSystem(policy=policy)
    app = make_benchmark_app(2)
    system.launch(app)
    system.rotate()
    system.run_for(8_000.0)     # shadow aged 8 s < 10 s: still alive
    assert system.rotate() == "flip"


def test_collection_then_rotation_reinits_and_recouples():
    policy = aggressive_policy()
    system = AndroidSystem(policy=policy)
    app = make_benchmark_app(2)
    system.launch(app)
    system.rotate()
    system.run_for(15_000.0)   # collected
    thread = system.atms.threads[app.package]
    assert thread.shadow_activity is None
    assert system.rotate() == "init"
    assert thread.shadow_activity is not None
    assert system.rotate() == "flip"


def test_gc_counters_exposed():
    policy = aggressive_policy()
    system = AndroidSystem(policy=policy)
    app = make_benchmark_app(2)
    system.launch(app)
    system.rotate()
    system.run_for(15_000.0)
    assert system.ctx.recorder.counters["shadow-gc-collected"] == 1
