"""Integration tests: language switching with localised resources.

The paper names language switching as a runtime change (Section 1).
The subtle requirement: a TextView whose text comes from a *string
resource* must show the NEW locale's string after the change (the fresh
inflate resolves it), while a TextView the USER typed into must keep the
typed text (state carried over).  RCHDroid's user-set/default split
delivers both at once.
"""

import pytest

from repro import Android10Policy, AndroidSystem, RCHDroidPolicy
from repro.android.res import StringRes
from repro.android.views.inflate import ViewSpec
from repro.apps.dsl import AppSpec, AsyncScript, simple_layout
from repro.android.res import Orientation, ResourceTable

GREETING_ID = 10
DRAFT_ID = 11


def localized_app() -> AppSpec:
    table = ResourceTable()
    table.add_string("hello", "Hello", "en")
    table.add_string("hello", "Bonjour", "fr")
    widgets = [
        ViewSpec("TextView", view_id=GREETING_ID,
                 attrs={"text": StringRes("hello")}),
        ViewSpec("EditText", view_id=DRAFT_ID),
    ]
    for orientation in (Orientation.PORTRAIT, Orientation.LANDSCAPE):
        table.add_layout("main", simple_layout("main", widgets), orientation)
    return AppSpec(package="loc.app", label="Localized", resources=table)


def test_inflate_resolves_string_resource():
    system = AndroidSystem(policy=RCHDroidPolicy())
    app = localized_app()
    system.launch(app)
    greeting = system.foreground_activity(app.package).require_view(GREETING_ID)
    assert greeting.get_attr("text") == "Hello"
    assert "text" not in greeting.user_set_attrs


def test_locale_switch_refreshes_resource_text_under_rchdroid():
    system = AndroidSystem(policy=RCHDroidPolicy())
    app = localized_app()
    system.launch(app)
    assert system.set_locale("fr") == "init"
    greeting = system.foreground_activity(app.package).require_view(GREETING_ID)
    assert greeting.get_attr("text") == "Bonjour"


def test_locale_switch_keeps_user_typed_text_under_rchdroid():
    system = AndroidSystem(policy=RCHDroidPolicy())
    app = localized_app()
    system.launch(app)
    foreground = system.foreground_activity(app.package)
    foreground.require_view(DRAFT_ID).set_attr("text", "my draft")
    system.set_locale("fr")
    fresh = system.foreground_activity(app.package)
    assert fresh.require_view(DRAFT_ID).get_attr("text") == "my draft"
    assert fresh.require_view(GREETING_ID).get_attr("text") == "Bonjour"


def test_flip_back_keeps_current_locale_string():
    """Flipping back to the reused instance must re-resolve nothing
    stale: the revived tree was inflated under 'en', but its greeting
    was never user-set, so restore must not overwrite the... revived
    instance keeps its inflate-time default for its own config."""
    system = AndroidSystem(policy=RCHDroidPolicy())
    app = localized_app()
    system.launch(app)
    system.set_locale("fr")           # init: new instance says Bonjour
    system.set_locale("en")           # flip: revived instance says Hello
    greeting = system.foreground_activity(app.package).require_view(GREETING_ID)
    assert greeting.get_attr("text") == "Hello"


def test_user_overwritten_resource_text_is_carried():
    """Once the user overwrites a resource-bound text, it becomes state
    and survives the change (now user-set)."""
    system = AndroidSystem(policy=RCHDroidPolicy())
    app = localized_app()
    system.launch(app)
    system.foreground_activity(app.package).require_view(
        GREETING_ID
    ).set_attr("text", "custom title")
    system.set_locale("fr")
    greeting = system.foreground_activity(app.package).require_view(GREETING_ID)
    assert greeting.get_attr("text") == "custom title"


def test_async_update_does_not_clobber_new_locale_resource():
    """Lazy migration transfers the async-updated view but must leave
    untouched resource-bound siblings on the sunny tree alone."""
    table = ResourceTable()
    table.add_string("hello", "Hello", "en")
    table.add_string("hello", "Bonjour", "fr")
    widgets = [
        ViewSpec("TextView", view_id=GREETING_ID,
                 attrs={"text": StringRes("hello")}),
        ViewSpec("TextView", view_id=DRAFT_ID),
    ]
    for orientation in (Orientation.PORTRAIT, Orientation.LANDSCAPE):
        table.add_layout("main", simple_layout("main", widgets), orientation)
    app = AppSpec(
        package="loc.async", label="l", resources=table,
        async_script=AsyncScript("bg", 2_000.0,
                                 ((DRAFT_ID, "text", "async-result"),)),
    )
    system = AndroidSystem(policy=RCHDroidPolicy())
    system.launch(app)
    system.start_async(app)
    system.set_locale("fr")
    system.run_until_idle()
    fresh = system.foreground_activity(app.package)
    assert fresh.require_view(DRAFT_ID).get_attr("text") == "async-result"
    assert fresh.require_view(GREETING_ID).get_attr("text") == "Bonjour"


def test_stock_restart_also_refreshes_resources_but_loses_draft():
    system = AndroidSystem(policy=Android10Policy())
    app = localized_app()
    system.launch(app)
    foreground = system.foreground_activity(app.package)
    foreground.require_view(GREETING_ID).set_attr("text", "custom title")
    system.set_locale("fr")
    fresh = system.foreground_activity(app.package)
    # custom title was in a plain TextView: lost; resource re-resolved.
    assert fresh.require_view(GREETING_ID).get_attr("text") == "Bonjour"
