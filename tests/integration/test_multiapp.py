"""Integration tests: several apps sharing one device."""

import pytest

from repro import Android10Policy, AndroidSystem, RCHDroidPolicy
from repro.apps import make_benchmark_app
from repro.core.states import check_single_shadow_invariant


def test_two_apps_rotate_independently():
    system = AndroidSystem(policy=RCHDroidPolicy())
    one = make_benchmark_app(2, package="multi.one")
    two = make_benchmark_app(2, package="multi.two")
    system.launch(one)
    system.rotate()  # handled by one
    system.launch(two)
    system.rotate()  # handled by two
    episodes = system.ctx.recorder.latencies_named("handling")
    assert [e.detail for e in episodes] == ["multi.one|init", "multi.two|init"]


def test_single_shadow_invariant_across_app_switches():
    system = AndroidSystem(policy=RCHDroidPolicy())
    one = make_benchmark_app(2, package="multi.one")
    two = make_benchmark_app(2, package="multi.two")
    system.launch(one)
    system.rotate()
    system.launch(two)
    system.rotate()
    check_single_shadow_invariant(list(system.atms.threads.values()))
    shadows = [
        thread for thread in system.atms.threads.values()
        if thread.shadow_activity is not None
    ]
    assert len(shadows) == 1
    assert shadows[0].process.name == "multi.two"


def test_memory_accounting_is_per_process():
    system = AndroidSystem(policy=RCHDroidPolicy())
    one = make_benchmark_app(2, package="multi.one")
    two = make_benchmark_app(8, package="multi.two")
    system.launch(one)
    system.launch(two)
    assert system.memory_of("multi.two") > system.memory_of("multi.one")


def test_switch_back_and_rotate_after_shadow_release():
    system = AndroidSystem(policy=RCHDroidPolicy())
    one = make_benchmark_app(2, package="multi.one")
    two = make_benchmark_app(2, package="multi.two")
    system.launch(one)
    system.rotate()            # one gains a shadow
    system.launch(two)         # one's shadow released
    system.atms.switch_to("multi.one")
    assert system.rotate() == "init"  # must re-init, shadow is gone


def test_crash_of_one_app_leaves_other_running():
    system = AndroidSystem(policy=Android10Policy())
    fragile = make_benchmark_app(2, package="multi.fragile")
    solid = make_benchmark_app(2, package="multi.solid")
    system.launch(fragile)
    system.start_async(fragile)
    system.rotate()
    system.launch(solid)
    system.run_until_idle()  # fragile's task returns -> crash
    assert system.crashed("multi.fragile")
    assert not system.crashed("multi.solid")
    assert system.foreground_activity("multi.solid") is not None
