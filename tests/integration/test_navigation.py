"""Integration tests: multi-activity navigation and the back stack."""

import pytest

from repro import Android10Policy, AndroidSystem, RCHDroidPolicy
from repro.android.app.lifecycle import LifecycleState
from repro.android.res import Orientation, ResourceTable
from repro.android.views.inflate import ViewSpec
from repro.apps.dsl import AppSpec, simple_layout

MAIN_TEXT_ID = 20
DETAIL_TEXT_ID = 30


def two_screen_app() -> AppSpec:
    table = ResourceTable()
    main = simple_layout("main", [ViewSpec("TextView", view_id=MAIN_TEXT_ID)])
    detail = simple_layout(
        "detail", [ViewSpec("TextView", view_id=DETAIL_TEXT_ID)]
    )
    for orientation in (Orientation.PORTRAIT, Orientation.LANDSCAPE):
        table.add_layout("main", main, orientation)
        table.add_layout("detail", detail, orientation)
    return AppSpec(
        package="nav.app", label="Nav", resources=table,
        activity_layouts={"detail": "detail"},
    )


def booted(policy_factory=RCHDroidPolicy):
    system = AndroidSystem(policy=policy_factory())
    app = two_screen_app()
    system.launch(app)
    return system, app


class TestStartActivity:
    def test_push_shows_detail_and_stops_main(self):
        system, app = booted()
        main = system.foreground_activity(app.package)
        record = system.start_activity(app, "detail")
        assert record.activity_name == "detail"
        detail = system.foreground_activity(app.package)
        assert detail is not main
        assert detail.find_view(DETAIL_TEXT_ID) is not None
        assert main.lifecycle is LifecycleState.STOPPED

    def test_starting_same_activity_dedups(self):
        system, app = booted()
        task = system.atms.stack.find_task(app.package)
        system.start_activity(app, "main")
        assert len(task.records) == 1

    def test_start_on_unknown_package_raises(self):
        system, app = booted()
        with pytest.raises(LookupError):
            system.atms.start_activity("missing", "detail")


class TestBack:
    def test_back_returns_to_main(self):
        system, app = booted()
        main = system.foreground_activity(app.package)
        system.start_activity(app, "detail")
        below = system.back()
        assert below is not None
        assert system.foreground_activity(app.package) is main
        assert main.lifecycle is LifecycleState.RESUMED

    def test_back_on_last_activity_exits_app(self):
        system, app = booted()
        assert system.back() is None
        assert system.atms.stack.find_task(app.package) is None
        thread = system.atms.threads[app.package]
        assert not thread.process.alive

    def test_back_on_empty_device_is_noop(self):
        system = AndroidSystem(policy=RCHDroidPolicy())
        assert system.back() is None


class TestNavigationAndShadows:
    def test_in_task_switch_releases_shadow(self):
        """Section 3.5: switching the foreground activity releases the
        coupled shadow immediately."""
        system, app = booted()
        system.rotate()
        thread = system.atms.threads[app.package]
        assert thread.shadow_activity is not None
        system.start_activity(app, "detail")
        assert thread.shadow_activity is None

    def test_back_releases_shadow_and_exits_cleanly(self):
        system, app = booted()
        system.rotate()  # couple a shadow to the foreground
        thread = system.atms.threads[app.package]
        assert system.back() is None  # logical app exit
        assert thread.shadow_activity is None
        assert not thread.process.alive

    def test_rotate_on_detail_then_back_to_main(self):
        system, app = booted()
        main = system.foreground_activity(app.package)
        system.start_activity(app, "detail")
        assert system.rotate() == "init"   # detail gains a shadow pair
        detail_sunny = system.foreground_activity(app.package)
        detail_sunny.require_view(DETAIL_TEXT_ID).set_attr("text", "d-state")
        assert system.rotate() == "flip"
        assert (
            system.foreground_activity(app.package)
            .require_view(DETAIL_TEXT_ID).get_attr("text") == "d-state"
        )
        system.back()                       # finish the detail pair
        assert system.foreground_activity(app.package) is main
        assert main.lifecycle is LifecycleState.RESUMED

    def test_stock_navigation_unchanged(self):
        system, app = booted(Android10Policy)
        system.start_activity(app, "detail")
        system.rotate()
        system.back()
        main = system.foreground_activity(app.package)
        assert main is not None
        assert main.activity_name == "main"
