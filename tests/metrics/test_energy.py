"""Unit tests for the energy model (Section 5.6)."""

import pytest

from repro.metrics.energy import EnergyModel
from repro.metrics.recorder import TraceRecorder
from repro.sim.costs import DEFAULT_COSTS


@pytest.fixture
def model():
    return EnergyModel(DEFAULT_COSTS, TraceRecorder())


def test_steady_state_power_is_the_paper_reading(model):
    assert model.steady_state_power_w() == pytest.approx(4.03, abs=0.02)


def test_power_is_monotone_in_utilisation(model):
    assert (
        model.power_at_utilisation(0.0)
        < model.power_at_utilisation(0.5)
        < model.power_at_utilisation(1.0)
    )


def test_utilisation_is_clamped(model):
    assert model.power_at_utilisation(-1.0) == model.power_at_utilisation(0.0)
    assert model.power_at_utilisation(2.0) == model.power_at_utilisation(1.0)


def test_average_power_includes_recorded_busy_time():
    recorder = TraceRecorder()
    model = EnergyModel(DEFAULT_COSTS, recorder)
    idle_power = model.average_power_w("app", 0.0, 1000.0)
    recorder.record_busy("app", "ui", 0.0, 500.0)
    busy_power = model.average_power_w("app", 0.0, 1000.0)
    assert busy_power > idle_power


def test_inactive_process_draws_steady_state_only(model):
    """The Section 5.6 claim: no busy time -> no extra power."""
    assert model.average_power_w("app", 0.0, 60_000.0) == pytest.approx(
        model.steady_state_power_w()
    )


def test_energy_is_power_times_time(model):
    power = model.average_power_w("app", 0.0, 2000.0)
    assert model.energy_joules("app", 0.0, 2000.0) == pytest.approx(power * 2.0)
