"""Unit tests for trace export."""

import json

import pytest

from repro import Android10Policy, AndroidSystem, RCHDroidPolicy
from repro.apps import make_benchmark_app
from repro.metrics.export import (
    export_run,
    latencies_csv,
    profiler_csv,
    run_to_dict,
)


@pytest.fixture
def recorded_system():
    system = AndroidSystem(policy=RCHDroidPolicy())
    app = make_benchmark_app(2)
    system.launch(app)
    system.rotate()
    system.rotate()
    return system, app


def test_run_to_dict_is_json_serialisable(recorded_system):
    system, _ = recorded_system
    payload = run_to_dict(system.ctx.recorder)
    text = json.dumps(payload)
    assert "handling" in text


def test_run_to_dict_sections(recorded_system):
    system, app = recorded_system
    payload = run_to_dict(system.ctx.recorder)
    assert {"latencies", "heap", "busy", "events", "crashes", "counters"} <= \
        set(payload)
    assert len(payload["latencies"]) == 2
    assert payload["crashes"] == []
    assert payload["counters"]["coinflip-hit"] == 1
    assert any(sample["process"] == app.package for sample in payload["heap"])


def test_export_run_writes_file(tmp_path, recorded_system):
    system, _ = recorded_system
    path = tmp_path / "run.json"
    export_run(system.ctx.recorder, str(path))
    loaded = json.loads(path.read_text())
    assert loaded["latencies"][0]["name"] == "handling"


def test_profiler_csv_has_header_and_rows(recorded_system):
    system, app = recorded_system
    csv = profiler_csv(system.ctx.recorder, app.package, 0.0, 1_000.0, 100.0)
    lines = csv.strip().splitlines()
    assert lines[0] == "time_ms,cpu_percent,heap_mb"
    assert len(lines) == 11  # header + 10 windows


def test_latencies_csv_rows_match_episodes(recorded_system):
    system, app = recorded_system
    csv = latencies_csv(system.ctx.recorder)
    lines = csv.strip().splitlines()
    assert len(lines) == 3  # header + init + flip
    assert f"{app.package}|init" in lines[1]
    assert f"{app.package}|flip" in lines[2]


def test_crash_appears_in_export():
    system = AndroidSystem(policy=Android10Policy())
    app = make_benchmark_app(2)
    system.launch(app)
    system.start_async(app)
    system.rotate()
    system.run_until_idle()
    payload = run_to_dict(system.ctx.recorder)
    assert payload["crashes"][0]["exception"] == "NullPointerException"
