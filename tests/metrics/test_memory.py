"""Unit tests for the memory accountant."""

import pytest

from repro.metrics.memory import MemoryAccountant
from repro.metrics.recorder import TraceRecorder
from repro.sim.clock import VirtualClock


@pytest.fixture
def setup():
    clock = VirtualClock()
    recorder = TraceRecorder()
    return clock, recorder, MemoryAccountant(clock, recorder)


def test_allocate_and_total(setup):
    _, _, memory = setup
    memory.allocate("app", "a", 10.0)
    memory.allocate("app", "b", 5.5)
    assert memory.total_mb("app") == pytest.approx(15.5)


def test_processes_are_independent(setup):
    _, _, memory = setup
    memory.allocate("app1", "a", 10.0)
    memory.allocate("app2", "a", 20.0)
    assert memory.total_mb("app1") == 10.0
    assert memory.total_mb("app2") == 20.0


def test_reallocate_replaces_footprint(setup):
    _, _, memory = setup
    memory.allocate("app", "bitmap", 1.0)
    memory.allocate("app", "bitmap", 4.0)
    assert memory.total_mb("app") == 4.0


def test_free_is_idempotent(setup):
    _, _, memory = setup
    memory.allocate("app", "a", 10.0)
    memory.free("app", "a")
    memory.free("app", "a")
    assert memory.total_mb("app") == 0.0


def test_drop_process_zeroes_ledger(setup):
    _, _, memory = setup
    memory.allocate("app", "a", 10.0)
    memory.allocate("app", "b", 10.0)
    memory.drop_process("app")
    assert memory.total_mb("app") == 0.0
    assert memory.owners("app") == []


def test_every_change_emits_heap_sample(setup):
    clock, recorder, memory = setup
    memory.allocate("app", "a", 10.0)
    clock.advance(5.0)
    memory.free("app", "a")
    samples = recorder.heap_of("app")
    assert [(s.when_ms, s.mb) for s in samples] == [(0.0, 10.0), (5.0, 0.0)]


def test_footprint_query(setup):
    _, _, memory = setup
    memory.allocate("app", "a", 7.0)
    assert memory.footprint_mb("app", "a") == 7.0
    assert memory.footprint_mb("app", "missing") == 0.0
