"""Unit tests for the windowed profiler."""

import pytest

from repro.metrics.profiler import Profiler
from repro.metrics.recorder import TraceRecorder


@pytest.fixture
def recorder():
    return TraceRecorder()


def test_cpu_series_bins_busy_time(recorder):
    recorder.record_busy("app", "ui", 100.0, 50.0)
    profiler = Profiler(recorder)
    series = profiler.cpu_series("app", 0.0, 1000.0, 100.0)
    by_window = dict(series)
    assert by_window[0.0] == 0.0
    assert by_window[100.0] == pytest.approx(50.0)
    assert by_window[200.0] == 0.0


def test_cpu_interval_spanning_windows_is_split(recorder):
    recorder.record_busy("app", "ui", 150.0, 100.0)
    profiler = Profiler(recorder)
    by_window = dict(profiler.cpu_series("app", 0.0, 400.0, 100.0))
    assert by_window[100.0] == pytest.approx(50.0)
    assert by_window[200.0] == pytest.approx(50.0)


def test_cpu_capped_at_100_percent(recorder):
    recorder.record_busy("app", "ui", 0.0, 60.0)
    recorder.record_busy("app", "worker", 0.0, 60.0)
    profiler = Profiler(recorder)
    by_window = dict(profiler.cpu_series("app", 0.0, 100.0, 100.0))
    assert by_window[0.0] == 100.0


def test_cpu_series_filters_other_processes(recorder):
    recorder.record_busy("other", "ui", 0.0, 100.0)
    profiler = Profiler(recorder)
    assert all(pct == 0.0 for _, pct in
               profiler.cpu_series("app", 0.0, 200.0, 100.0))


def test_heap_series_is_step_function(recorder):
    recorder.record_heap(50.0, "app", 10.0)
    recorder.record_heap(250.0, "app", 40.0)
    profiler = Profiler(recorder)
    by_window = dict(profiler.heap_series("app", 0.0, 400.0, 100.0))
    assert by_window[0.0] == 0.0
    assert by_window[100.0] == 10.0
    assert by_window[200.0] == 10.0
    assert by_window[300.0] == 40.0


def test_trace_combines_cpu_and_heap(recorder):
    recorder.record_busy("app", "ui", 0.0, 10.0)
    recorder.record_heap(0.0, "app", 33.0)
    profiler = Profiler(recorder)
    points = profiler.trace("app", 0.0, 100.0, 100.0)
    assert len(points) == 1
    assert points[0].cpu_percent == pytest.approx(10.0)
    assert points[0].heap_mb == 33.0


def test_peak_cpu(recorder):
    recorder.record_busy("app", "ui", 0.0, 10.0)
    recorder.record_busy("app", "ui", 100.0, 90.0)
    profiler = Profiler(recorder)
    assert profiler.peak_cpu_percent("app", 0.0, 300.0, 100.0) == pytest.approx(90.0)


def test_total_busy_with_bounds(recorder):
    recorder.record_busy("app", "ui", 0.0, 10.0)
    recorder.record_busy("app", "ui", 100.0, 10.0)
    profiler = Profiler(recorder)
    assert profiler.total_busy_ms("app") == pytest.approx(20.0)
    assert profiler.total_busy_ms("app", 95.0, 200.0) == pytest.approx(10.0)


def test_window_ms_must_be_positive(recorder):
    profiler = Profiler(recorder)
    with pytest.raises(ValueError):
        profiler.cpu_series("app", 0.0, 100.0, 0.0)
