"""Unit tests for the trace recorder."""

import pytest

from repro.metrics.recorder import TraceRecorder


@pytest.fixture
def recorder():
    return TraceRecorder()


def test_zero_duration_busy_is_dropped(recorder):
    recorder.record_busy("p", "ui", 0.0, 0.0)
    assert recorder.busy == []


def test_busy_interval_end(recorder):
    recorder.record_busy("p", "ui", 10.0, 5.0, "x")
    assert recorder.busy[0].end_ms == 15.0


def test_latency_begin_end_roundtrip(recorder):
    recorder.latency_begin("handling", 100.0, detail="app")
    record = recorder.latency_end("handling", 150.0)
    assert record is not None
    assert record.duration_ms == 50.0
    assert record.detail == "app"
    assert recorder.latencies_named("handling") == [record]


def test_latency_end_without_begin_returns_none(recorder):
    assert recorder.latency_end("nope", 10.0) is None
    assert recorder.latencies == []


def test_latency_reopen_restarts(recorder):
    recorder.latency_begin("handling", 100.0)
    recorder.latency_begin("handling", 200.0)
    record = recorder.latency_end("handling", 250.0)
    assert record.start_ms == 200.0


def test_durations_ms_filters_by_name(recorder):
    recorder.record_latency("a", 0.0, 10.0)
    recorder.record_latency("b", 0.0, 99.0)
    recorder.record_latency("a", 0.0, 20.0)
    assert recorder.durations_ms("a") == [10.0, 20.0]


def test_events_of_kind(recorder):
    recorder.record_event(1.0, "rotate")
    recorder.record_event(2.0, "touch")
    recorder.record_event(3.0, "rotate")
    assert [e.when_ms for e in recorder.events_of_kind("rotate")] == [1.0, 3.0]


def test_crash_queries(recorder):
    assert not recorder.crashed("app")
    recorder.record_crash(5.0, "app", "NullPointerException", "boom")
    assert recorder.crashed("app")
    assert not recorder.crashed("other")


def test_heap_of_filters_by_process(recorder):
    recorder.record_heap(1.0, "a", 10.0)
    recorder.record_heap(2.0, "b", 20.0)
    assert [s.mb for s in recorder.heap_of("a")] == [10.0]


def test_counters(recorder):
    recorder.bump("flips")
    recorder.bump("flips", 2)
    assert recorder.counters["flips"] == 3
    assert recorder.counters["missing"] == 0
