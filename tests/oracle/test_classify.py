"""The rule table: taxonomy, attribution, pluggability, no silence."""

import pytest

from repro.errors import OracleError
from repro.oracle import (
    ClassificationRule,
    DEFAULT_RULES,
    VERDICT_EXPECTED_POLICY_DELTA,
    VERDICT_SIMULATOR_BUG,
    VERDICT_STATE_DIVERGENCE,
    classify,
)
from repro.oracle.classify import (
    COMPARE_DIGEST,
    COMPARE_REPLAY,
    COMPARE_SPANS,
    DivergenceContext,
)
from repro.oracle.differ import DigestDivergence
from repro.trace.replay import Divergence
from tests.oracle.test_digest import make_digest


def digest_ctx(field, a_digest, b_digest, compare=COMPARE_DIGEST):
    return DivergenceContext(
        compare=compare,
        a_policy=a_digest.policy, b_policy=b_digest.policy,
        divergence=DigestDivergence(
            field, a_digest.policy, b_digest.policy,
            getattr(a_digest, field), getattr(b_digest, field),
        ),
        a_digest=a_digest, b_digest=b_digest,
    )


def span_ctx(index, prefix_end, a="android10", b="rchdroid"):
    return DivergenceContext(
        compare=COMPARE_SPANS, a_policy=a, b_policy=b,
        divergence=Divergence(index=index, field="name",
                              recorded="x", replayed="y"),
        span_index=index, prefix_end=prefix_end,
    )


class TestDefaultTaxonomy:
    def test_replay_divergence_is_a_simulator_bug(self):
        ctx = digest_ctx(
            "slots",
            make_digest(policy="rchdroid"),
            make_digest(policy="rchdroid", slots=(("note", "'x'"),)),
            compare=COMPARE_REPLAY,
        )
        finding, = classify([ctx])
        assert finding.verdict == VERDICT_SIMULATOR_BUG
        assert finding.rule == "replay-nondeterminism"
        assert finding.policies == ("rchdroid",)

    def test_prefix_span_divergence_is_a_simulator_bug(self):
        finding, = classify([span_ctx(index=2, prefix_end=5)])
        assert finding.verdict == VERDICT_SIMULATOR_BUG
        assert finding.rule == "policy-independent-prefix"

    def test_post_prefix_span_divergence_is_expected(self):
        finding, = classify([span_ctx(index=5, prefix_end=5)])
        assert finding.verdict == VERDICT_EXPECTED_POLICY_DELTA
        assert finding.rule == "span-delta"

    def test_state_loss_is_attributed_to_the_losing_side_only(self):
        stock = make_digest(policy="android10", slots=(("note", "None"),),
                            lost_slots=("note",))
        fixed = make_digest(policy="rchdroid")
        finding, = classify([digest_ctx("lost_slots", stock, fixed)])
        assert finding.verdict == VERDICT_STATE_DIVERGENCE
        assert finding.policies == ("android10",)

    def test_crashed_side_is_a_loser_too(self):
        crashed = make_digest(policy="android10", crashed=True,
                              crash_kinds=("NullPointer",))
        alive = make_digest(policy="rchdroid")
        finding, = classify([digest_ctx("crashed", crashed, alive)])
        assert finding.verdict == VERDICT_STATE_DIVERGENCE
        assert finding.policies == ("android10",)

    def test_state_mismatch_without_any_loser_is_a_simulator_bug(self):
        """Two policies that both kept their own user's state must agree
        on the values; disagreement means the simulator lied."""
        a = make_digest(policy="android10", slots=(("note", "'a'"),))
        b = make_digest(policy="rchdroid", slots=(("note", "'b'"),))
        finding, = classify([digest_ctx("slots", a, b)])
        assert finding.verdict == VERDICT_SIMULATOR_BUG
        assert finding.rule == "state-mismatch-without-loss"
        assert finding.policies == ("android10", "rchdroid")

    def test_lifecycle_delta_is_expected(self):
        a = make_digest(policy="android10", relaunches=3)
        b = make_digest(policy="runtimedroid")
        finding, = classify([digest_ctx("relaunches", a, b)])
        assert finding.verdict == VERDICT_EXPECTED_POLICY_DELTA
        assert finding.rule == "lifecycle-delta"
        assert finding.policies == ("android10", "runtimedroid")


class TestPluggability:
    def test_custom_rule_can_tighten_the_taxonomy(self):
        """docs/ORACLE.md's example: treat any relaunch-count delta as
        suspect by prepending one rule — no oracle code touched."""
        strict = (
            ClassificationRule(
                name="no-relaunch-deltas",
                verdict=VERDICT_SIMULATOR_BUG,
                matches=lambda ctx: ctx.digest_field == "relaunches",
            ),
            *DEFAULT_RULES,
        )
        a = make_digest(policy="android10", relaunches=3)
        b = make_digest(policy="runtimedroid")
        finding, = classify([digest_ctx("relaunches", a, b)], rules=strict)
        assert finding.verdict == VERDICT_SIMULATOR_BUG
        assert finding.rule == "no-relaunch-deltas"

    def test_first_match_wins(self):
        everything = ClassificationRule(
            name="catch-all", verdict=VERDICT_EXPECTED_POLICY_DELTA,
            matches=lambda ctx: True,
        )
        finding, = classify([span_ctx(index=0, prefix_end=5)],
                            rules=(everything, *DEFAULT_RULES))
        assert finding.rule == "catch-all"

    def test_unclassifiable_divergence_raises_instead_of_silence(self):
        with pytest.raises(OracleError):
            classify([span_ctx(index=0, prefix_end=5)], rules=())

    def test_findings_serialise_for_reports(self):
        finding, = classify([span_ctx(index=5, prefix_end=5)])
        data = finding.to_dict()
        assert data["verdict"] == VERDICT_EXPECTED_POLICY_DELTA
        assert data["policies"] == ["android10", "rchdroid"]
        assert isinstance(data["detail"], str)
