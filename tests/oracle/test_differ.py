"""Digest diffing, span rebasing, and the policy-independent prefix."""

from repro.oracle import diff_digests
from repro.oracle.differ import (
    diff_span_streams,
    first_policy_event,
    rebase_snapshot,
    strip_for_cross_policy,
)
from tests.oracle.test_digest import make_digest


def span(name, category, start, end, **extra):
    entry = {
        "name": name, "category": category, "kind": "sync",
        "process": "fleet.notepad", "thread": "main",
        "start_ms": start, "end_ms": end,
        "span_id": len(name),  # tracer-local noise the strip must drop
        "args": {"local": True},
    }
    entry.update(extra)
    return entry


class TestDiffDigests:
    def test_identical_digests_diff_empty(self):
        assert diff_digests(make_digest(), make_digest()) == []

    def test_policy_field_is_identity_not_divergence(self):
        a = make_digest(policy="android10")
        b = make_digest(policy="rchdroid")
        assert diff_digests(a, b) == []

    def test_reports_one_divergence_per_field(self):
        a = make_digest(policy="android10", lost_slots=("note",),
                        relaunches=2)
        b = make_digest(policy="rchdroid")
        found = diff_digests(a, b)
        assert sorted(d.field for d in found) == ["lost_slots", "relaunches"]
        by_field = {d.field: d for d in found}
        assert by_field["lost_slots"].a_policy == "android10"
        assert by_field["lost_slots"].a_value == ("note",)
        assert "lost_slots" in by_field["lost_slots"].describe()


class TestRebase:
    def test_shifts_both_timestamps(self):
        rebased = rebase_snapshot([span("work", "app", 1000.0, 1010.5)],
                                  1000.0)
        assert rebased[0]["start_ms"] == 0.0
        assert rebased[0]["end_ms"] == 10.5

    def test_open_spans_keep_their_none_end(self):
        entry = span("work", "app", 1000.0, None)
        assert rebase_snapshot([entry], 1000.0)[0]["end_ms"] is None

    def test_input_is_not_mutated(self):
        entry = span("work", "app", 1000.0, 1010.0)
        rebase_snapshot([entry], 1000.0)
        assert entry["start_ms"] == 1000.0

    def test_strip_drops_tracer_local_fields(self):
        stripped = strip_for_cross_policy([span("w", "app", 0.0, 1.0)])
        assert "span_id" not in stripped[0]
        assert "args" not in stripped[0]
        assert stripped[0]["name"] == "w"


class TestPolicyIndependentPrefix:
    def test_stream_without_policy_events_is_all_prefix(self):
        stream = [span("w1", "app", 0.0, 1.0), span("w2", "app", 1.0, 2.0)]
        assert first_policy_event(stream) == len(stream)

    def test_boundary_is_the_events_start_time_not_its_index(self):
        """The tracer buffer is completion-ordered: the enclosing
        update-configuration span lands *after* the policy-dependent
        children it triggered.  The prefix must stop at its start."""
        stream = [
            span("setup", "app", 0.0, 5.0),
            span("relaunch", "lifecycle", 10.0, 14.0),  # child, buffered 1st
            span("update-configuration", "atms", 10.0, 15.0),
        ]
        assert first_policy_event(stream) == 1

    def test_span_straddling_the_boundary_is_not_prefix(self):
        stream = [
            span("early", "app", 0.0, 2.0),
            span("straddler", "app", 3.0, 12.0),
            span("update-configuration", "atms", 10.0, 15.0),
        ]
        assert first_policy_event(stream) == 1

    def test_process_kill_also_opens_divergent_territory(self):
        stream = [
            span("early", "app", 0.0, 2.0),
            span("process-kill", "process", 5.0, 6.0),
        ]
        assert first_policy_event(stream) == 1

    def test_app_category_never_matches_markers(self):
        stream = [span("update-configuration-cache", "app", 0.0, 1.0)]
        assert first_policy_event(stream) == 1


class TestDiffSpanStreams:
    def test_prefix_end_is_the_smaller_of_both_streams(self):
        a = [span("w", "app", 0.0, 1.0),
             span("update-configuration", "atms", 2.0, 3.0)]
        b = [span("w", "app", 0.0, 1.0), span("w2", "app", 1.0, 2.0)]
        _, prefix_end = diff_span_streams(a, b)
        assert prefix_end == 1

    def test_streams_differing_only_in_local_fields_are_equal(self):
        a = [span("w", "app", 0.0, 1.0)]
        b = [dict(span("w", "app", 0.0, 1.0), span_id=999)]
        divergences, _ = diff_span_streams(a, b)
        assert divergences == []

    def test_divergences_are_bounded(self):
        a = [span(f"a{i}", "app", float(i), i + 1.0) for i in range(20)]
        b = [span(f"b{i}", "app", float(i), i + 1.0) for i in range(20)]
        divergences, _ = diff_span_streams(a, b, max_diffs=5)
        assert len(divergences) == 5
