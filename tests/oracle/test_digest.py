"""StateDigest: canonical bytes, the self-audit, and live capture."""

from repro.engine.batch import POLICIES
from repro.fleet.population import fleet_corpus
from repro.oracle import StateDigest, capture_digest
from repro.oracle.digest import LIFECYCLE_FIELDS, STATE_FIELDS, SessionLog
from repro.system import AndroidSystem


def make_digest(**overrides) -> StateDigest:
    base = dict(
        policy="rchdroid", package="fleet.notepad",
        slots=(("note", "'hello'"),), lost_slots=(),
        crashed=False,
    )
    base.update(overrides)
    return StateDigest(**base)


class TestFieldTiers:
    def test_every_compared_field_is_in_exactly_one_tier(self):
        from dataclasses import fields

        compared = {spec.name for spec in fields(StateDigest)} - {
            "policy", "package"}
        assert STATE_FIELDS | LIFECYCLE_FIELDS == compared
        assert not STATE_FIELDS & LIFECYCLE_FIELDS


class TestSelfAudit:
    def test_clean_digest_is_self_consistent(self):
        assert make_digest().self_consistent()

    def test_lost_slot_breaks_self_consistency(self):
        assert not make_digest(lost_slots=("note",)).self_consistent()

    def test_crash_breaks_self_consistency(self):
        assert not make_digest(crashed=True).self_consistent()


class TestCanonicalForm:
    def test_equal_digests_have_equal_bytes(self):
        assert make_digest().to_json() == make_digest().to_json()

    def test_any_field_change_changes_the_bytes(self):
        assert make_digest().to_json() != make_digest(
            slots=(("note", "'bye'"),)).to_json()

    def test_round_trips_through_dict(self):
        import json

        digest = make_digest(
            storage=(("draft", "'x'"),), crash_kinds=("NullPointer",),
            view_shape=(("TextView", "note"),), dialogs=("save?",),
            relaunches=2, handling_count=3,
        )
        restored = StateDigest.from_dict(json.loads(
            json.dumps(digest.to_dict())))
        assert restored == digest
        assert restored.to_json() == digest.to_json()


class TestCaptureDigest:
    def test_captures_a_live_session(self):
        app = fleet_corpus()[0]
        system = AndroidSystem(policy=POLICIES["rchdroid"](), seed=1)
        system.launch(app)
        system.run_for(400.0)
        log = SessionLog(handling_baseline=len(system.handling_times()))
        slot = app.slots[0]
        system.write_slot(app, slot.name, "typed")
        log.expected[slot.name] = repr("typed")
        system.rotate()
        system.run_until_idle()

        digest = capture_digest(system, app, log)
        assert digest.policy == "rchdroid"
        assert digest.package == app.package
        assert digest.foreground
        assert not digest.crashed
        assert dict(digest.slots)[slot.name] == repr("typed")
        assert digest.lost_slots == ()
        assert digest.handling_count == 1
        assert digest.view_shape  # the tree was walked

    def test_stock_rotation_shows_up_as_lost_slots(self):
        """The audit is the whole point: stock Android drops the bare
        field on rotation and the digest knows by itself."""
        app = fleet_corpus()[0]
        system = AndroidSystem(policy=POLICIES["android10"](), seed=1)
        system.launch(app)
        system.run_for(400.0)
        log = SessionLog(handling_baseline=len(system.handling_times()))
        slot = app.slots[0]
        system.write_slot(app, slot.name, "typed")
        log.expected[slot.name] = repr("typed")
        system.rotate()
        system.run_until_idle()

        digest = capture_digest(system, app, log)
        assert not digest.crashed
        assert slot.name in digest.lost_slots
        assert not digest.self_consistent()
