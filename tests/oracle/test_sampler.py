"""Deterministic member sampling for ``repro fleet --oracle``."""

import pytest

from repro.errors import OracleError
from repro.oracle import sample_members, sampled


class TestSampled:
    def test_pure_in_seed_and_member(self):
        draws = [sampled(0x5EED, m, 0.3) for m in range(500)]
        assert draws == [sampled(0x5EED, m, 0.3) for m in range(500)]

    def test_rate_zero_samples_nobody(self):
        assert not any(sampled(1, m, 0.0) for m in range(200))

    def test_rate_one_samples_everybody(self):
        assert all(sampled(1, m, 1.0) for m in range(200))

    def test_rate_is_roughly_respected(self):
        hits = sum(sampled(7, m, 0.25) for m in range(2000))
        assert 0.15 < hits / 2000 < 0.35

    def test_members_draw_independently(self):
        """One sub-stream per member: adding members never reshuffles
        earlier decisions (what keeps resumes byte-identical)."""
        first = [sampled(7, m, 0.5) for m in range(10)]
        longer = [sampled(7, m, 0.5) for m in range(100)]
        assert longer[:10] == first

    def test_different_seeds_sample_differently(self):
        assert ([sampled(1, m, 0.5) for m in range(100)]
                != [sampled(2, m, 0.5) for m in range(100)])

    @pytest.mark.parametrize("bad", [-0.5, 1.01, float("nan"), "lots", None])
    def test_bad_rates_are_rejected(self, bad):
        with pytest.raises(OracleError):
            sampled(1, 0, bad)


class TestSampleMembers:
    def test_subset_preserves_member_order(self):
        members = sample_members(7, range(100), 0.5)
        assert list(members) == sorted(members)
        assert set(members) <= set(range(100))

    def test_agrees_with_pointwise_sampling(self):
        assert sample_members(7, range(50), 0.25) == tuple(
            m for m in range(50) if sampled(7, m, 0.25))

    def test_slicing_cannot_change_the_sample(self):
        """Sampling a shard's member range yields exactly the fleet-wide
        sample restricted to that range."""
        whole = sample_members(7, range(40), 0.5)
        sliced = (sample_members(7, range(0, 20), 0.5)
                  + sample_members(7, range(20, 40), 0.5))
        assert sliced == whole
