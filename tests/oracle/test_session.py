"""End-to-end differential sessions and the aggregate report."""

import json

import pytest

from repro.errors import OracleError
from repro.fleet.population import fleet_corpus
from repro.oracle import (
    VERDICT_SIMULATOR_BUG,
    format_oracle_report,
    report_for,
    run_oracle_session,
)
from repro.oracle.session import build_prefix, capture_prefix

NOTEPAD = fleet_corpus()[0]

# One short script exercising a config change, a fresh write, and the
# async path — enough for every policy to show its character quickly.
SCRIPT = (
    ("wait", 200.0),
    ("write", 0),
    ("wait", 100.0),
    ("rotate",),
    ("wait", 400.0),
)


@pytest.fixture(scope="module")
def session():
    return run_oracle_session(NOTEPAD, seed=7, script=SCRIPT)


class TestOracleSession:
    def test_runs_every_policy_record_and_replay(self, session):
        assert set(session.runs) == {
            "android10", "runtimedroid", "rchdroid"}
        for run in session.runs.values():
            assert run.deterministic

    def test_finds_no_simulator_bugs(self, session):
        assert session.simulator_bugs() == []

    def test_stock_loses_the_note_and_rchdroid_keeps_it(self, session):
        stock = session.runs["android10"].digest
        fixed = session.runs["rchdroid"].digest
        assert "note" in stock.lost_slots
        assert fixed.lost_slots == ()
        counts = session.verdict_counts()
        assert counts["android10"].get("STATE_DIVERGENCE", 0) > 0
        assert counts["rchdroid"].get("STATE_DIVERGENCE", 0) == 0

    def test_span_streams_cover_only_the_post_fork_session(self, session):
        for run in session.runs.values():
            assert run.spans
            starts = [entry["start_ms"] for entry in run.spans
                      if entry["start_ms"] is not None]
            assert min(starts) >= 0.0  # rebased to the fork instant

    def test_same_seed_reruns_identically(self, session):
        again = run_oracle_session(NOTEPAD, seed=7, script=SCRIPT)
        assert ([f.to_dict() for f in again.findings]
                == [f.to_dict() for f in session.findings])

    def test_digest_only_fast_path_skips_spans(self):
        fast = run_oracle_session(NOTEPAD, seed=7, script=SCRIPT,
                                  trace=False)
        assert all(not run.spans for run in fast.runs.values())
        assert fast.simulator_bugs() == []

    def test_caller_supplied_prefixes_are_used(self):
        prefixes = {
            policy: capture_prefix(NOTEPAD, policy, 7)
            for policy in ("android10", "rchdroid")
        }
        session = run_oracle_session(
            NOTEPAD, ("android10", "rchdroid"), 7,
            script=SCRIPT, trace=False, prefixes=prefixes,
        )
        assert set(session.runs) == {"android10", "rchdroid"}
        assert session.simulator_bugs() == []

    def test_policy_set_is_validated(self):
        with pytest.raises(OracleError):
            run_oracle_session(NOTEPAD, ())
        with pytest.raises(OracleError):
            run_oracle_session(NOTEPAD, ("rchdroid", "rchdroid"))
        with pytest.raises(OracleError):
            build_prefix(NOTEPAD, "nope", 7)

    def test_prefix_plays_no_configuration_changes(self):
        system = build_prefix(NOTEPAD, "android10", 7)
        assert system.handling_times() == []
        assert not system.crashed(NOTEPAD.package)
        assert system.foreground_activity(NOTEPAD.package) is not None


class TestOracleReport:
    def test_report_json_is_canonical(self, session):
        report = report_for([session])
        data = json.loads(report.to_json())
        assert data["sessions"] == 1
        assert data["policies"] == list(session.policies)
        assert report.to_json() == report_for([session]).to_json()

    def test_counts_fold_across_sessions(self, session):
        doubled = report_for([session, session])
        single = report_for([session])
        assert doubled.sessions == 2
        assert doubled.totals == {
            v: 2 * n for v, n in single.totals.items()}

    def test_clean_report_renders_clean_verdict(self, session):
        text = format_oracle_report(report_for([session]))
        assert "CLEAN (no simulator bugs)" in text
        assert "state-div" in text

    def test_simulator_bugs_flip_the_verdict_line(self, session):
        report = report_for([session])
        report.totals[VERDICT_SIMULATOR_BUG] += 1
        assert not report.clean
        assert "broke a promise" in format_oracle_report(report)
