"""Property-based tests for the simulation kernel and OS layer."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.android.os import Bundle, Parcel
from repro.sim.clock import VirtualClock
from repro.sim.scheduler import Scheduler

# ----------------------------------------------------------------------
# scheduler ordering
# ----------------------------------------------------------------------
delays = st.lists(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False), min_size=1,
    max_size=50,
)


@given(delays)
def test_events_fire_in_nondecreasing_time_order(delay_list):
    scheduler = Scheduler(VirtualClock())
    fired: list[float] = []
    for delay in delay_list:
        scheduler.schedule(delay, lambda: fired.append(scheduler.clock.now_ms))
    scheduler.run_until_idle()
    assert fired == sorted(fired)
    assert len(fired) == len(delay_list)


@given(delays)
def test_equal_delays_preserve_submission_order(delay_list):
    scheduler = Scheduler(VirtualClock())
    order: list[int] = []
    for index, _ in enumerate(delay_list):
        scheduler.schedule(5.0, lambda index=index: order.append(index))
    scheduler.run_until_idle()
    assert order == list(range(len(delay_list)))


@given(delays, st.floats(min_value=0.0, max_value=1e6, allow_nan=False))
def test_run_until_never_executes_later_events(delay_list, deadline):
    scheduler = Scheduler(VirtualClock())
    fired: list[float] = []
    for delay in delay_list:
        scheduler.schedule(
            delay, lambda delay=delay: fired.append(delay)
        )
    scheduler.run_until(deadline)
    assert all(delay <= deadline for delay in fired)
    assert scheduler.clock.now_ms >= deadline


# ----------------------------------------------------------------------
# bundle / parcel
# ----------------------------------------------------------------------
scalars = st.one_of(
    st.integers(), st.text(max_size=20), st.booleans(),
    st.floats(allow_nan=False),
    st.lists(st.integers(), max_size=5),
)


def bundles(depth: int = 2):
    if depth == 0:
        values = scalars
    else:
        values = st.one_of(scalars, st.deferred(lambda: bundles(depth - 1)))
    return st.dictionaries(st.text(max_size=10), values, max_size=6).map(
        _to_bundle
    )


def _to_bundle(data: dict) -> Bundle:
    bundle = Bundle()
    for key, value in data.items():
        bundle.put(key, value)
    return bundle


def _flatten(bundle: Bundle) -> dict:
    out = {}
    for key, value in bundle.items():
        out[key] = _flatten(value) if isinstance(value, Bundle) else value
    return out


@given(bundles())
def test_parcel_deep_copy_preserves_content(bundle):
    assert _flatten(Parcel.deep_copy(bundle)) == _flatten(bundle)


@given(bundles())
def test_parcel_deep_copy_is_independent(bundle):
    snapshot = _flatten(bundle)
    clone = Parcel.deep_copy(bundle)
    for key in clone.keys():
        value = clone.get(key)
        if isinstance(value, Bundle):
            value.put("injected", "OVERWRITTEN")
        elif isinstance(value, list):
            value.append("OVERWRITTEN")
        else:
            clone.put(key, "OVERWRITTEN")
    assert _flatten(bundle) == snapshot


@given(bundles())
def test_bundle_size_counts_leaves(bundle):
    def leaves(data: dict) -> int:
        return sum(
            leaves(v) if isinstance(v, dict) else 1 for v in data.values()
        )

    assert bundle.size() == leaves(_flatten(bundle))
