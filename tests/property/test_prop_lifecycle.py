"""Property-based tests for the lifecycle state machine (Fig. 4)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.android.app.lifecycle import (
    LEGAL_TRANSITIONS,
    LifecycleState,
    check_transition,
)
from repro.errors import LifecycleError

states = st.sampled_from(list(LifecycleState))


@given(states, states)
def test_check_transition_agrees_with_the_table(current, target):
    if target in LEGAL_TRANSITIONS[current]:
        check_transition(current, target)
    else:
        try:
            check_transition(current, target)
        except LifecycleError:
            return
        raise AssertionError(
            f"{current} -> {target} should have been rejected"
        )


@given(st.data())
def test_random_legal_walks_never_escape_the_machine(data):
    """Follow random legal edges; every visited state must itself have a
    transition entry, and DESTROYED must be absorbing."""
    state = LifecycleState.INITIALIZED
    for _ in range(30):
        options = sorted(LEGAL_TRANSITIONS[state], key=lambda s: s.value)
        if not options:
            assert state is LifecycleState.DESTROYED
            break
        state = data.draw(st.sampled_from(options))
        assert state in LEGAL_TRANSITIONS


def test_every_non_terminal_state_can_reach_destroyed():
    """No zombie states: DESTROYED is reachable from everywhere."""
    reachable = {LifecycleState.DESTROYED}
    changed = True
    while changed:
        changed = False
        for state, targets in LEGAL_TRANSITIONS.items():
            if state not in reachable and targets & reachable:
                reachable.add(state)
                changed = True
    assert reachable == set(LifecycleState)
