"""Property-based tests for the RCHDroid mechanism invariants.

* Essence mapping is a bijection on the shared id set, whatever the
  trees look like.
* The migration policy copies exactly the declared attributes.
* The end-to-end state-preservation contract holds for arbitrary slot
  values and rotation counts.
* Algorithm 1's decision is monotone in shadow age and protected by
  frequency, for arbitrary threshold settings.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import AndroidSystem, GcThresholds, RCHDroidConfig, RCHDroidPolicy
from repro.android.views.inflate import ViewSpec
from repro.android.views.widgets import WIDGET_TYPES
from repro.apps.dsl import AppSpec, two_orientation_resources
from repro.core.mapping import build_essence_mapping
from repro.core.migration import MigrationEngine
from repro.sim.context import SimContext

LEAF_WIDGETS = ["TextView", "EditText", "Button", "ImageView", "ProgressBar",
                "SeekBar", "CheckBox", "VideoView"]


# ----------------------------------------------------------------------
# essence mapping
# ----------------------------------------------------------------------
id_sets = st.sets(st.integers(min_value=10, max_value=200), min_size=0,
                  max_size=20)


def _launch_with_ids(system, ids, package):
    widgets = [ViewSpec("TextView", view_id=view_id) for view_id in sorted(ids)]
    app = AppSpec(
        package=package, label=package,
        resources=two_orientation_resources("main", widgets),
    )
    return system.launch(app).instance


@given(id_sets, id_sets)
@settings(max_examples=30, deadline=None)
def test_mapping_is_bijective_on_shared_ids(shadow_ids, sunny_ids):
    system = AndroidSystem()
    shadow = _launch_with_ids(system, shadow_ids, "prop.shadow")
    sunny = _launch_with_ids(system, sunny_ids, "prop.sunny")
    mapping = build_essence_mapping(system.ctx, shadow, sunny)
    shared = (shadow_ids & sunny_ids) | {1}  # container id 1 always shared
    assert mapping.mapped == len(shared)
    for view_id in shared:
        shadow_view = shadow.find_view(view_id)
        sunny_view = sunny.find_view(view_id)
        assert shadow_view.sunny_peer is sunny_view
        assert sunny_view.sunny_peer is shadow_view
    for view_id in shadow_ids - sunny_ids:
        assert shadow.find_view(view_id).sunny_peer is None


# ----------------------------------------------------------------------
# migration policy
# ----------------------------------------------------------------------
@given(
    st.sampled_from(LEAF_WIDGETS),
    st.dictionaries(
        st.text(min_size=1, max_size=8), st.integers(), max_size=5
    ),
)
@settings(max_examples=50, deadline=None)
def test_migration_copies_exactly_declared_attributes(widget_name, noise):
    ctx = SimContext()
    cls = WIDGET_TYPES[widget_name]
    source = cls(ctx, view_id=1)
    target = cls(ctx, view_id=1)
    for attr in cls.MIGRATED_ATTRS:
        source.set_attr(attr, f"value-{attr}", silent=True)
    for attr, value in noise.items():
        if attr not in cls.MIGRATED_ATTRS:
            source.set_attr(attr, value, silent=True)
    copied = MigrationEngine.migrate_attributes(source, target)
    assert copied == len(cls.MIGRATED_ATTRS)
    for attr in cls.MIGRATED_ATTRS:
        assert target.get_attr(attr) == f"value-{attr}"
    for attr in noise:
        if attr not in cls.MIGRATED_ATTRS:
            assert target.get_attr(attr) is None


@given(st.sampled_from(LEAF_WIDGETS))
@settings(max_examples=20, deadline=None)
def test_migration_is_idempotent(widget_name):
    ctx = SimContext()
    cls = WIDGET_TYPES[widget_name]
    source = cls(ctx, view_id=1)
    target = cls(ctx, view_id=1)
    for attr in cls.MIGRATED_ATTRS:
        source.set_attr(attr, "v", silent=True)
    MigrationEngine.migrate_attributes(source, target)
    first = dict(target.attrs)
    MigrationEngine.migrate_attributes(source, target)
    assert target.attrs == first


# ----------------------------------------------------------------------
# end-to-end state preservation
# ----------------------------------------------------------------------
@given(
    st.sampled_from(
        [("TextView", "text"), ("ProgressBar", "progress"),
         ("CheckBox", "checked"), ("ListView", "checked_item")]
    ),
    st.one_of(st.text(max_size=30), st.integers(), st.booleans()),
    st.integers(min_value=1, max_value=6),
)
@settings(max_examples=25, deadline=None)
def test_rchdroid_preserves_id_view_state_for_any_rotation_count(
    widget_and_attr, value, rotations
):
    widget, attr = widget_and_attr
    from repro.apps.dsl import StateSlot, StorageKind

    app = AppSpec(
        package="prop.state", label="p",
        resources=two_orientation_resources(
            "main", [ViewSpec(widget, view_id=10)]
        ),
        slots=(StateSlot("s", StorageKind.VIEW_ATTR, view_id=10, attr=attr),),
    )
    system = AndroidSystem(policy=RCHDroidPolicy())
    system.launch(app)
    system.write_slot(app, "s", value)
    for _ in range(rotations):
        system.rotate()
        system.run_for(200.0)
    assert system.read_slot(app, "s") == value
    assert not system.crashed(app.package)


# ----------------------------------------------------------------------
# Algorithm 1 decision properties
# ----------------------------------------------------------------------
@given(
    st.floats(min_value=1_000.0, max_value=120_000.0),
    st.integers(min_value=1, max_value=10),
)
@settings(max_examples=15, deadline=None)
def test_gc_never_collects_younger_than_thresh_t(thresh_t_ms, thresh_f):
    from repro.apps import make_benchmark_app
    from repro.core.gc import GcDecision

    policy = RCHDroidPolicy(
        RCHDroidConfig(
            thresholds=GcThresholds(thresh_t_ms=thresh_t_ms,
                                    thresh_f=thresh_f)
        )
    )
    system = AndroidSystem(policy=policy)
    app = make_benchmark_app(1)
    system.launch(app)
    system.rotate()
    thread = system.atms.thread_of(app.package)
    # Age the shadow to just below the threshold without running the
    # scheduler (no GC ticks fire): the decision must protect it.
    entered = thread.shadow_activity.shadow_entered_at_ms
    target = entered + thresh_t_ms - 1.0
    if target > system.ctx.clock.now_ms:
        system.ctx.clock.advance(target - system.ctx.clock.now_ms)
        assert policy.gc._decide(thread) in (
            GcDecision.TOO_RECENT, GcDecision.TOO_FREQUENT
        )
