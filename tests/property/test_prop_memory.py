"""Property tests: memory accounting conservation.

Whatever the app does, the simulated heap must be conserved: what is
allocated is freed on destroy, a crashed process reads zero, and the
RCHDroid steady state holds exactly two instances' worth.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import AndroidSystem, RCHDroidPolicy
from repro.android.views.inflate import ViewSpec
from repro.apps import make_benchmark_app
from repro.apps.dsl import AppSpec, two_orientation_resources
from repro.metrics.memory import MemoryAccountant
from repro.metrics.recorder import TraceRecorder
from repro.sim.clock import VirtualClock


# ----------------------------------------------------------------------
# ledger-level conservation
# ----------------------------------------------------------------------
operations = st.lists(
    st.tuples(
        st.sampled_from(["alloc", "free"]),
        st.integers(min_value=0, max_value=9),        # owner key
        st.floats(min_value=0.01, max_value=50.0),    # size
    ),
    max_size=60,
)


@given(operations)
def test_ledger_total_equals_live_allocations(ops):
    memory = MemoryAccountant(VirtualClock(), TraceRecorder())
    live: dict[int, float] = {}
    for op, owner, size in ops:
        if op == "alloc":
            memory.allocate("p", owner, size)
            live[owner] = size
        else:
            memory.free("p", owner)
            live.pop(owner, None)
    assert abs(memory.total_mb("p") - sum(live.values())) < 1e-9


@given(operations)
def test_drop_process_always_reads_zero(ops):
    memory = MemoryAccountant(VirtualClock(), TraceRecorder())
    for op, owner, size in ops:
        if op == "alloc":
            memory.allocate("p", owner, size)
        else:
            memory.free("p", owner)
    memory.drop_process("p")
    assert memory.total_mb("p") == 0.0


# ----------------------------------------------------------------------
# framework-level conservation
# ----------------------------------------------------------------------
@given(
    num_rotations=st.integers(min_value=0, max_value=8),
    num_images=st.integers(min_value=0, max_value=12),
)
@settings(max_examples=20, deadline=None)
def test_rchdroid_memory_is_bounded_by_two_instances(num_rotations, num_images):
    system = AndroidSystem(policy=RCHDroidPolicy())
    app = make_benchmark_app(max(num_images, 1))
    system.launch(app)
    after_launch = system.memory_of(app.package)
    for _ in range(num_rotations):
        system.rotate()
    instance_cost = after_launch - system.ctx.costs.process_base_mb \
        - app.extra_heap_mb
    upper_bound = after_launch + instance_cost + 1.0  # + bundle slack
    assert system.memory_of(app.package) <= upper_bound


@given(view_count=st.integers(min_value=1, max_value=30))
@settings(max_examples=15, deadline=None)
def test_app_exit_releases_everything_but_the_process(view_count):
    widgets = [ViewSpec("TextView", view_id=100 + i) for i in range(view_count)]
    app = AppSpec(
        package="mem.exit", label="m",
        resources=two_orientation_resources("main", widgets),
        extra_heap_mb=5.0,
    )
    system = AndroidSystem(policy=RCHDroidPolicy())
    system.launch(app)
    system.rotate()
    system.back()  # exits the app; process killed
    assert system.memory_of(app.package) == 0.0
