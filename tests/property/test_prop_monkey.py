"""Property tests: the transparency contract under random event storms.

Whatever sequence of rotations, resizes, locale switches, writes, async
tasks, and waits a user produces, RCHDroid must keep the contract:

* the app never crashes (for apps whose state lives in views),
* the last value the user wrote is what the foreground shows,
* at most one shadow instance exists, coupled to the foreground,
* memory stays bounded (two instances max, GC reclaims the rest).

Stock Android, under the same storms, crashes any app whose async task
straddles a change — asserted too, as the contract's control group.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Android10Policy, RCHDroidPolicy
from repro.android.views.inflate import ViewSpec
from repro.apps import make_benchmark_app
from repro.apps.dsl import AppSpec, StateSlot, StorageKind, \
    two_orientation_resources
from repro.apps.monkey import monkey_run


def view_state_app() -> AppSpec:
    return AppSpec(
        package="monkey.app", label="m",
        resources=two_orientation_resources(
            "main", [ViewSpec("TextView", view_id=10)]
        ),
        slots=(StateSlot("note", StorageKind.VIEW_ATTR,
                         view_id=10, attr="text"),),
    )


@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=20, deadline=None)
def test_rchdroid_contract_under_random_storms(seed):
    report = monkey_run(RCHDroidPolicy, view_state_app(), steps=30, seed=seed)
    assert not report.crashed
    assert report.invariant_violations == []
    assert report.state_followed_user
    # bounded memory: process base + at most two instances of a tiny app
    assert report.peak_memory_mb < 60.0


@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=15, deadline=None)
def test_rchdroid_never_crashes_async_apps(seed):
    report = monkey_run(
        RCHDroidPolicy, make_benchmark_app(4), steps=25, seed=seed
    )
    assert not report.crashed
    assert report.invariant_violations == []


@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=15, deadline=None)
def test_handling_paths_are_only_init_and_flip(seed):
    report = monkey_run(RCHDroidPolicy, view_state_app(), steps=30, seed=seed)
    assert set(report.handling_paths) <= {"init", "flip"}
    if report.handling_paths:
        assert report.handling_paths[0] == "init"


@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=10, deadline=None)
def test_stock_android_crashes_when_async_straddles_a_change(seed):
    """Control group: under the same storms, stock Android crashes the
    benchmark app whenever an async task straddles a change."""
    report = monkey_run(
        Android10Policy, make_benchmark_app(4), steps=25, seed=seed
    )
    straddled = _async_straddles_change(report.events)
    if report.crashed:
        # A crash implies a task straddled a change, and it is always
        # the stale-view NullPointer.
        assert straddled
        assert report.crash_exception == "NullPointerException"
    if not any(kind == "async" for kind, _ in report.events):
        # Without async tasks, the restart policy merely loses state.
        assert not report.crashed


def _async_straddles_change(events) -> bool:
    """Did a 5 s async task have a change land before it completed?"""
    pending_ms = None
    for kind, payload in events:
        if kind == "async":
            pending_ms = 5_000.0
        elif kind == "wait" and pending_ms is not None:
            pending_ms -= payload
            if pending_ms <= 0:
                pending_ms = None
        elif kind in ("rotate", "resize", "locale") and pending_ms is not None:
            return True
    return False


@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=10, deadline=None)
def test_monkey_is_deterministic(seed):
    a = monkey_run(RCHDroidPolicy, view_state_app(), steps=15, seed=seed)
    b = monkey_run(RCHDroidPolicy, view_state_app(), steps=15, seed=seed)
    assert a.events == b.events
    assert a.handling_paths == b.handling_paths
    assert a.final_slot_value == b.final_slot_value
