"""Property tests: save/restore round-trips over random view trees."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Android10Policy, AndroidSystem, RCHDroidPolicy
from repro.android.views.inflate import ViewSpec
from repro.apps.dsl import AppSpec, two_orientation_resources

WIDGET_ATTRS = [
    ("TextView", "text", st.text(max_size=20)),
    ("EditText", "text", st.text(max_size=20)),
    ("ProgressBar", "progress", st.integers(0, 100)),
    ("CheckBox", "checked", st.booleans()),
    ("ListView", "checked_item", st.integers(0, 50)),
    ("ImageView", "drawable", st.text(min_size=1, max_size=10)),
]


@st.composite
def random_app_state(draw):
    """A random flat tree plus a value for each widget's state attr."""
    count = draw(st.integers(min_value=1, max_value=8))
    choices = [
        draw(st.sampled_from(WIDGET_ATTRS)) for _ in range(count)
    ]
    widgets = [
        ViewSpec(widget, view_id=100 + index)
        for index, (widget, _, _) in enumerate(choices)
    ]
    values = [
        (100 + index, attr, draw(strategy))
        for index, (_, attr, strategy) in enumerate(choices)
    ]
    return widgets, values


@given(random_app_state())
@settings(max_examples=30, deadline=None)
def test_rchdroid_roundtrips_every_runtime_attribute(state):
    widgets, values = state
    app = AppSpec(
        package="prop.sr", label="p",
        resources=two_orientation_resources("main", widgets),
    )
    system = AndroidSystem(policy=RCHDroidPolicy())
    system.launch(app)
    foreground = system.foreground_activity(app.package)
    for view_id, attr, value in values:
        foreground.require_view(view_id).set_attr(attr, value)
    system.rotate()
    fresh = system.foreground_activity(app.package)
    for view_id, attr, value in values:
        assert fresh.require_view(view_id).get_attr(attr) == value


@given(random_app_state())
@settings(max_examples=30, deadline=None)
def test_stock_roundtrips_exactly_the_auto_saved_subset(state):
    widgets, values = state
    app = AppSpec(
        package="prop.stock", label="p",
        resources=two_orientation_resources("main", widgets),
    )
    system = AndroidSystem(policy=Android10Policy())
    system.launch(app)
    foreground = system.foreground_activity(app.package)
    for view_id, attr, value in values:
        foreground.require_view(view_id).set_attr(attr, value)
    system.rotate()
    fresh = system.foreground_activity(app.package)
    for view_id, attr, value in values:
        view = fresh.require_view(view_id)
        survived = view.get_attr(attr) == value
        auto_saved = attr in type(view).AUTO_SAVED_ATTRS
        # Default values can coincide with the written value (e.g. the
        # empty string); only assert the informative direction.
        if auto_saved:
            assert survived
        elif not survived:
            assert not auto_saved


@given(random_app_state(), st.integers(min_value=2, max_value=5))
@settings(max_examples=15, deadline=None)
def test_state_is_a_fixed_point_after_the_first_rotation(state, rotations):
    """Rotations beyond the first (flips) never change visible state."""
    widgets, values = state
    app = AppSpec(
        package="prop.fix", label="p",
        resources=two_orientation_resources("main", widgets),
    )
    system = AndroidSystem(policy=RCHDroidPolicy())
    system.launch(app)
    foreground = system.foreground_activity(app.package)
    for view_id, attr, value in values:
        foreground.require_view(view_id).set_attr(attr, value)
    system.rotate()
    snapshot = [
        (view_id, attr,
         system.foreground_activity(app.package)
         .require_view(view_id).get_attr(attr))
        for view_id, attr, _ in values
    ]
    for _ in range(rotations):
        system.rotate()
    fresh = system.foreground_activity(app.package)
    for view_id, attr, value in snapshot:
        assert fresh.require_view(view_id).get_attr(attr) == value
