"""End-to-end daemon tests: determinism, streaming, cancellation.

The tentpole promise of fleet-as-a-service is that the daemon is a
*warm place to run the same computation* — so the one test that
matters most runs the same fleet four ways (plain CLI subprocess,
``--daemon`` client subprocess, daemon first request, daemon warm
request) and requires all four reports byte-identical.  Cancellation
must leave nothing behind: no orphan ``/dev/shm`` segments, no
checkpoint files, and the next request unaffected.
"""

from __future__ import annotations

import glob
import json
import os
import subprocess
import sys
import time

import pytest

from repro.fleet.arena import arena_available
from repro.fleet.run import run_fleet
from repro.serve.client import DaemonClient, daemon_available
from repro.serve.protocol import fleet_spec_from_params

DEVICES = 6
SEED = 0x5EED
PARAMS = {"devices": DEVICES, "seed": SEED}

pytestmark = pytest.mark.skipif(
    not arena_available(), reason="no shared memory on this host"
)


def _env() -> dict:
    env = dict(os.environ)
    src = os.path.join(os.getcwd(), "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return env


def _start_daemon(tmp_path, name="daemon"):
    ready = str(tmp_path / f"{name}-ready.json")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--jobs", "1", "--ready-file", ready,
         "--root", str(tmp_path / f"{name}-root")],
        env=_env(), stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT, text=True,
    )
    deadline = time.monotonic() + 60.0
    while not os.path.exists(ready):
        assert proc.poll() is None, proc.stdout.read()
        assert time.monotonic() < deadline, "daemon never became ready"
        time.sleep(0.05)
    with open(ready, encoding="utf-8") as handle:
        url = json.load(handle)["url"]
    return proc, url


def _stop_daemon(proc, url):
    try:
        if proc.poll() is None:
            DaemonClient(url).shutdown()
            proc.wait(timeout=60)
    finally:
        if proc.poll() is None:
            proc.kill()


def _shm_entries() -> set[str]:
    return set(glob.glob("/dev/shm/psm_*"))


@pytest.fixture(scope="module")
def daemon(tmp_path_factory):
    tmp_path = tmp_path_factory.mktemp("serve")
    proc, url = _start_daemon(tmp_path)
    yield url
    _stop_daemon(proc, url)


@pytest.fixture(scope="module")
def reference_report() -> str:
    """The canonical report bytes for PARAMS, computed in-process."""
    return run_fleet(fleet_spec_from_params(PARAMS), jobs=1).to_json()


class TestDeterminism:
    def test_first_and_warm_requests_match_in_process_bytes(
            self, daemon, reference_report):
        client = DaemonClient(daemon, client="tests")
        first = client.run("fleet", PARAMS)
        warm = client.run("fleet", PARAMS)
        assert first["event"] == "done" and first["exit"] == 0
        assert first["report_json"] == reference_report
        assert warm["report_json"] == reference_report

    def test_warm_request_hits_the_resident_arena(self, daemon):
        client = DaemonClient(daemon, client="tests")
        before = client.status()["resident"]["template_warm_hits"]
        client.run("fleet", PARAMS)
        after = client.status()["resident"]["template_warm_hits"]
        assert after > before

    def test_cli_and_daemon_client_agree_byte_for_byte(
            self, daemon, tmp_path, reference_report):
        plain_out = tmp_path / "plain.json"
        via_daemon_out = tmp_path / "daemon.json"
        base = [sys.executable, "-m", "repro", "fleet",
                "--devices", str(DEVICES), "--seed", str(SEED)]
        plain = subprocess.run(
            [*base, "--jobs", "1", "-o", str(plain_out)],
            env=_env(), capture_output=True, text=True, timeout=600,
        )
        via = subprocess.run(
            [*base, "--daemon", daemon, "-o", str(via_daemon_out)],
            env=_env(), capture_output=True, text=True, timeout=600,
        )
        assert plain.returncode == 0, plain.stderr
        assert via.returncode == 0, via.stderr
        assert plain_out.read_bytes() == via_daemon_out.read_bytes()
        assert plain_out.read_text().rstrip("\n") == reference_report
        # The rendered report table is identical too: same bytes in,
        # same formatter over them.  Only the trailing "wrote <path>"
        # line may differ (the two runs write different files).
        def table(stdout: str) -> list[str]:
            return [line for line in stdout.splitlines()
                    if not line.startswith("wrote ")]

        assert table(plain.stdout) == table(via.stdout)

    def test_concurrent_clients_both_get_canonical_bytes(
            self, daemon, reference_report):
        alice = DaemonClient(daemon, client="alice")
        bob = DaemonClient(daemon, client="bob")
        job_a = alice.submit("fleet", PARAMS)
        job_b = bob.submit("fleet", PARAMS)
        final_a = list(alice.events(job_a))[-1]
        final_b = list(bob.events(job_b))[-1]
        assert final_a["report_json"] == reference_report
        assert final_b["report_json"] == reference_report


class TestStreaming:
    def test_partials_are_monotone_prefixes_of_the_final_report(
            self, daemon, reference_report):
        client = DaemonClient(daemon, client="stream")
        events = []
        final = client.run("fleet", PARAMS, on_event=events.append)
        assert [e["seq"] for e in events] == list(range(len(events)))
        assert events[0]["event"] == "accepted"
        assert events[1]["event"] == "started"
        partials = [e for e in events if e["event"] == "partial"]
        assert partials, "no partial reports streamed"
        covered = [e["covered_shards"] for e in partials]
        assert covered == sorted(covered)  # monotone refinement
        assert covered[-1] < final["covered_shards"]
        total = json.loads(reference_report)["fleet"]
        for partial in partials:
            fleet = json.loads(partial["report_json"])["fleet"]
            assert fleet["devices"] <= total["devices"]
            assert fleet["covered_shards"] == partial["covered_shards"]
            assert fleet["shards"] == total["shards"]
        assert final["report_json"] == reference_report

    def test_late_subscriber_replays_the_identical_stream(self, daemon):
        client = DaemonClient(daemon, client="stream")
        job_id = client.submit("fleet", PARAMS)
        live = list(client.events(job_id))
        replay = list(client.events(job_id))  # job finished: history only
        assert replay == live


class TestOracle:
    def test_oracle_job_matches_the_cli_subprocess(self, daemon, tmp_path):
        out = tmp_path / "oracle.json"
        cli = subprocess.run(
            [sys.executable, "-m", "repro", "oracle", "fleet.notepad",
             "--seed", str(SEED), "-o", str(out)],
            env=_env(), capture_output=True, text=True, timeout=600,
        )
        assert cli.returncode == 0, cli.stderr
        final = DaemonClient(daemon, client="tests").run(
            "oracle", {"app": "fleet.notepad", "seed": SEED}
        )
        assert final["event"] == "done"
        assert final["report_json"] == out.read_text().rstrip("\n")
        assert final["text"] in cli.stdout

    def test_unknown_app_is_rejected_at_submit_with_known_names(
            self, daemon):
        from repro.errors import ServeError

        client = DaemonClient(daemon, client="tests")
        with pytest.raises(ServeError, match="fleet.notepad"):
            client.submit("oracle", {"app": "com.example.absent"})


class TestFallback:
    def test_unreachable_daemon_falls_back_in_process(self, tmp_path):
        assert not daemon_available("http://127.0.0.1:9")
        out = tmp_path / "fallback.json"
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "fleet",
             "--devices", str(DEVICES), "--seed", str(SEED),
             "--daemon", "http://127.0.0.1:9", "-o", str(out)],
            env=_env(), capture_output=True, text=True, timeout=600,
        )
        assert proc.returncode == 0, proc.stderr
        assert "running in-process" in proc.stderr
        assert out.read_text().rstrip("\n") == run_fleet(
            fleet_spec_from_params(PARAMS), jobs=1
        ).to_json()


def test_cancellation_leaves_no_orphans(tmp_path, reference_report):
    """Cancel mid-run, then prove nothing leaked: no new ``/dev/shm``
    segments after shutdown, no checkpoint files in the daemon root,
    and the next request still byte-identical."""
    shm_before = _shm_entries()
    proc, url = _start_daemon(tmp_path, name="cancel")
    root = tmp_path / "cancel-root"
    try:
        client = DaemonClient(url, client="tests")
        client.run("fleet", PARAMS)  # warm the templates
        # Same seed -> same templates, but enough shards that the
        # cancel lands mid-run instead of racing a finished job.
        big_job = client.submit(
            "fleet", {"devices": DEVICES * 60, "seed": SEED}
        )
        assert client.cancel(big_job).get("cancelled") is True
        events = list(client.events(big_job))
        assert events[-1]["event"] == "cancelled"
        assert events[-1]["exit"] == 3
        after = client.run("fleet", PARAMS)
        assert after["report_json"] == reference_report
    finally:
        _stop_daemon(proc, url)
    assert proc.returncode == 0
    assert _shm_entries() == shm_before
    leftovers = [path for path in glob.glob(str(root / "**" / "*"),
                                            recursive=True)
                 if "checkpoint" in os.path.basename(path)
                 or path.endswith(".ckpt")]
    assert leftovers == []
