"""Wire-protocol unit tests: params validation, spec identity, events.

The load-bearing promise is that the daemon and the CLI build their
:class:`FleetSpec` through the *same* function, so a params dict can
never mean two different fleets depending on which side ran it.  These
tests pin that function's behaviour directly; the subprocess tests in
``test_daemon.py`` pin the resulting byte identity end to end.
"""

from __future__ import annotations

import math

import pytest

from repro.errors import ServeError, WorkloadError
from repro.fleet import fleet_corpus
from repro.fleet.run import FleetSpec
from repro.serve.protocol import (
    JOB_KINDS,
    PROTOCOL_VERSION,
    TERMINAL_EVENTS,
    check_job_params,
    decode_event,
    encode_event,
    fleet_params_fingerprint,
    fleet_spec_from_params,
    resolve_app,
)


class TestCheckJobParams:
    def test_known_kinds(self):
        assert set(JOB_KINDS) == {"fleet", "oracle", "experiment", "hunt"}

    def test_unknown_kind_rejected(self):
        with pytest.raises(ServeError, match="unknown job kind"):
            check_job_params("warp", {})

    def test_params_must_be_an_object(self):
        with pytest.raises(ServeError, match="JSON object"):
            check_job_params("fleet", [1, 2, 3])

    def test_none_params_default_to_empty(self):
        assert check_job_params("fleet", None) == {}

    def test_unknown_fleet_param_rejected_with_known_list(self):
        with pytest.raises(ServeError, match="shard_sizes"):
            check_job_params("fleet", {"shard_sizes": 8})

    def test_oracle_needs_app(self):
        with pytest.raises(ServeError, match="'app'"):
            check_job_params("oracle", {})

    def test_experiment_needs_name(self):
        with pytest.raises(ServeError, match="'experiment'"):
            check_job_params("experiment", {})


class TestFleetSpecFromParams:
    def test_empty_params_give_cli_defaults(self):
        spec = fleet_spec_from_params({})
        default = FleetSpec()
        assert spec.policies == default.policies
        assert spec.seed == default.seed
        assert spec.shard_size == default.shard_size
        assert spec.oracle_rate == 0.0

    def test_devices_is_the_fleet_total_split_across_cells(self):
        cells = len(fleet_corpus()) * 3
        spec = fleet_spec_from_params({"devices": 100})
        assert spec.devices_per_cell == math.ceil(100 / cells)
        assert fleet_spec_from_params({"devices": 1}).devices_per_cell == 1

    def test_policies_subset_shrinks_the_cell_grid(self):
        spec = fleet_spec_from_params(
            {"devices": 30, "policies": ["rchdroid"]}
        )
        assert spec.policies == ("rchdroid",)
        cells = len(fleet_corpus())
        assert spec.devices_per_cell == math.ceil(30 / cells)

    def test_type_errors_are_serve_errors(self):
        for bad in ({"devices": "12"}, {"seed": 1.5}, {"faults": "lots"},
                    {"policies": "rchdroid"}, {"devices": True},
                    {"workload": 7}, {"workload_ir": "inline"},
                    {"phases": ["diurnal"]}):
            with pytest.raises(ServeError):
                fleet_spec_from_params(bad)

    def test_workload_sources_are_mutually_exclusive(self):
        with pytest.raises(ServeError, match="mutually exclusive"):
            fleet_spec_from_params(
                {"workload": "idle", "phases": "diurnal"}
            )

    def test_named_workload_resolves_like_the_cli(self):
        from repro.workload.library import workload_named

        spec = fleet_spec_from_params({"workload": "idle"})
        assert spec.population == workload_named("idle")

    def test_unknown_workload_raises_the_cli_error(self):
        with pytest.raises(WorkloadError, match="unknown workload"):
            fleet_spec_from_params({"workload": "no-such-workload"})

    def test_inline_workload_ir_round_trips(self):
        from repro.workload.codec import workload_to_dict
        from repro.workload.generate import device_workload
        from repro.workload.library import workload_named

        workload = device_workload(workload_named("default"),
                                   seed=7, member=0)
        spec = fleet_spec_from_params(
            {"workload_ir": workload_to_dict(workload)}
        )
        assert spec.workload == workload

    def test_phase_plan_resolves(self):
        from repro.workload.library import phase_plan_named

        spec = fleet_spec_from_params({"phases": "diurnal"})
        assert spec.phases == phase_plan_named("diurnal")


class TestFingerprint:
    def test_key_order_does_not_matter(self):
        assert fleet_params_fingerprint({"devices": 12, "seed": 3}) == \
            fleet_params_fingerprint({"seed": 3, "devices": 12})

    def test_defaults_are_applied_before_hashing(self):
        assert fleet_params_fingerprint({}) == \
            fleet_params_fingerprint({"devices": 120, "faults": 0.0})

    def test_different_fleets_differ(self):
        assert fleet_params_fingerprint({"devices": 12}) != \
            fleet_params_fingerprint({"devices": 13})


class TestResolveApp:
    def test_package_and_label_both_resolve(self):
        app = fleet_corpus()[0]
        assert resolve_app(app.package)[0] is not None
        assert resolve_app(app.label.upper())[0] is not None

    def test_unknown_app_returns_sorted_known_names(self):
        app, known = resolve_app("com.example.absent")
        assert app is None
        assert known == sorted(known)
        assert fleet_corpus()[0].package.lower() in known


class TestEventLines:
    def test_round_trip_is_canonical(self):
        line = encode_event({"event": "partial", "seq": 2, "job": "job-1"})
        assert line.endswith(b"\n")
        assert line == b'{"event":"partial","job":"job-1","seq":2}\n'
        assert decode_event(line) == {
            "event": "partial", "job": "job-1", "seq": 2,
        }

    def test_terminal_events_are_the_protocol_constant(self):
        assert TERMINAL_EVENTS == ("done", "cancelled", "error")
        assert PROTOCOL_VERSION == 1

    def test_junk_lines_raise_serve_error(self):
        with pytest.raises(ServeError, match="not UTF-8"):
            decode_event(b"\xff\xfe")
        with pytest.raises(ServeError, match="not JSON"):
            decode_event("{nope")
        with pytest.raises(ServeError, match="no 'event'"):
            decode_event('{"job":"job-1"}')
        with pytest.raises(ServeError, match="no 'event'"):
            decode_event("[1,2]")
