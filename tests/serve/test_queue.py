"""Job lifecycle and shard-granular fairness, tested synchronously.

``repro.serve.queue`` is deliberately asyncio-free so these properties
— event history replay, cancellation semantics, round-robin across
clients with FIFO within one — can be pinned with plain pulls, no event
loop, no races.
"""

from __future__ import annotations

import pytest

from repro.errors import ServeError
from repro.serve.queue import FairScheduler, Job


def _noop(payload):
    return payload


def _job(client="anon", units=0, kind="fleet") -> Job:
    job = Job(kind, {}, client=client)
    for index in range(units):
        job.add_unit(_noop, index, tag=f"unit:{index}")
    return job


class TestJobLifecycle:
    def test_ids_are_unique_and_state_starts_queued(self):
        first, second = _job(), _job()
        assert first.job_id != second.job_id
        assert first.state == "queued" and not first.terminal

    def test_drained_requires_no_more_units_flag(self):
        job = _job(units=1)
        assert not job.drained
        fn, payload, tag = job.next_unit()
        assert (fn, payload, tag) == (_noop, 0, "unit:0")
        job.unit_done()
        assert not job.drained  # driver has not sealed the unit set
        job.no_more_units = True
        assert job.drained

    def test_unit_done_without_in_flight_raises(self):
        with pytest.raises(ServeError, match="unit_done"):
            _job().unit_done()

    def test_finish_rejects_non_terminal_states(self):
        job = _job()
        with pytest.raises(ServeError, match="terminal"):
            job.finish("running")
        job.finish("done")
        assert job.state == "done" and job.terminal

    def test_events_are_numbered_history(self):
        job = _job()
        job.emit("accepted", kind="fleet")
        record = job.emit("started", shards=4)
        assert record == {"event": "started", "job": job.job_id,
                          "seq": 1, "shards": 4}
        assert [event["seq"] for event in job.events] == [0, 1]

    def test_late_subscriber_replays_then_receives_live(self):
        job = _job()
        job.emit("accepted")
        job.emit("started")
        seen: list[dict] = []
        history = job.subscribe(seen.append)
        job.emit("partial", covered_shards=1)
        stream = history + seen
        assert [event["event"] for event in stream] == \
            ["accepted", "started", "partial"]
        job.unsubscribe(seen.append)
        job.emit("done")
        assert len(seen) == 1

    def test_subscribe_after_terminal_gets_history_only(self):
        job = _job()
        job.emit("accepted")
        job.finish("done")
        history = job.subscribe(lambda event: None)
        assert len(history) == 1
        assert job.subscribers == []


class TestCancellation:
    def test_cancel_drops_pending_units_and_seals_the_job(self):
        job = _job(units=3)
        job.next_unit()  # one in flight: cannot be recalled
        assert job.cancel() is True
        assert job.state == "cancelled"
        assert not job.units and job.no_more_units
        assert job.in_flight == 1  # still running; server discards it

    def test_cancel_twice_reports_already_terminal(self):
        job = _job()
        assert job.cancel() is True
        assert job.cancel() is False

    def test_cancelled_job_accepts_no_new_units(self):
        job = _job()
        job.cancel()
        job.add_unit(_noop, 0)
        assert not job.units
        assert job.next_unit() is None


class TestFairScheduler:
    def test_round_robin_across_clients(self):
        """One unit per turn per client: the small job from client B
        finishes long before client A's big job runs dry."""
        scheduler = FairScheduler()
        big = _job(client="alice", units=6)
        small = _job(client="bob", units=2)
        scheduler.add(big)
        scheduler.add(small)
        order = []
        while True:
            pulled = scheduler.next_unit()
            if pulled is None:
                break
            job, unit = pulled
            job.unit_done()
            order.append(job.client)
        assert order[:4] == ["alice", "bob", "alice", "bob"]
        assert order[4:] == ["alice"] * 4

    def test_fifo_within_one_client(self):
        scheduler = FairScheduler()
        first = _job(client="alice", units=2)
        second = _job(client="alice", units=2)
        scheduler.add(first)
        scheduler.add(second)
        pulls = [scheduler.next_unit()[0] for _ in range(4)]
        assert pulls == [first, first, second, second]

    def test_stalled_job_does_not_block_its_clients_later_jobs(self):
        """A job momentarily out of ready units (e.g. waiting on its
        template captures) yields its client's turn to the next job."""
        scheduler = FairScheduler()
        stalled = _job(client="alice", units=0)
        ready = _job(client="alice", units=1)
        scheduler.add(stalled)
        scheduler.add(ready)
        job, _unit = scheduler.next_unit()
        assert job is ready

    def test_cancelled_jobs_yield_nothing(self):
        scheduler = FairScheduler()
        job = _job(client="alice", units=3)
        scheduler.add(job)
        job.cancel()
        assert scheduler.next_unit() is None
        assert not scheduler.has_ready_units()

    def test_discard_retires_empty_clients_from_the_ring(self):
        scheduler = FairScheduler()
        job = _job(client="alice", units=1)
        scheduler.add(job)
        assert len(scheduler) == 1
        scheduler.discard(job)
        assert len(scheduler) == 0
        assert scheduler.jobs() == []
        assert scheduler.next_unit() is None
        scheduler.discard(job)  # idempotent

    def test_has_ready_units_tracks_queues(self):
        scheduler = FairScheduler()
        job = _job(client="alice", units=1)
        scheduler.add(job)
        assert scheduler.has_ready_units()
        job.next_unit()
        assert not scheduler.has_ready_units()
