"""Resident template arena: refcounts, eviction, identity, lifecycle.

The resident arena is the daemon's warm path, so the promises here are
sharper than the batch arena's: a template acquired by a running job
must never vanish underneath it (refcounts pin segments against both
LRU eviction and ``evict(all_idle=True)``), eviction is observable only
as a later miss, and ``destroy()`` returns ``/dev/shm`` to exactly its
prior state.
"""

from __future__ import annotations

import glob

import pytest

from repro.fleet.arena import (
    ResidentArena,
    _detach_all,
    arena_available,
    arena_get,
)
from repro.fleet.run import (
    FleetSpec,
    _reset_template_cache,
    capture_template,
    template_key,
)

pytestmark = pytest.mark.skipif(
    not arena_available(), reason="no shared memory on this host"
)

SPEC = FleetSpec(devices_per_cell=2, shard_size=2)


@pytest.fixture(autouse=True)
def _clean_state():
    _reset_template_cache()
    yield
    _detach_all()
    _reset_template_cache()


def _shm_entries() -> set[str]:
    return set(glob.glob("/dev/shm/psm_*"))


def _snap(cell_index=0):
    return capture_template(SPEC, cell_index)


def _key(cell_index=0) -> str:
    return template_key(SPEC, cell_index)


def test_publish_then_warm_counts_reuse():
    arena = ResidentArena()
    try:
        assert not arena.warm(_key())
        assert arena.publish(_key(), _snap())
        assert _key() in arena and len(arena) == 1
        assert arena.warm(_key())
        stats = arena.stats()
        assert stats["template_publishes"] == 1
        assert stats["template_warm_hits"] == 1
        assert stats["resident_bytes"] > 0
    finally:
        arena.destroy()


def test_republish_is_a_warm_hit_not_a_new_segment():
    arena = ResidentArena()
    try:
        arena.publish(_key(), _snap())
        before = _shm_entries()
        assert arena.publish(_key(), _snap())
        assert _shm_entries() == before
        assert arena.stats()["template_publishes"] == 1
        assert arena.stats()["template_warm_hits"] == 1
    finally:
        arena.destroy()


def test_acquired_templates_read_back_byte_identical():
    arena = ResidentArena()
    try:
        snap = _snap()
        arena.publish(_key(), snap)
        handle = arena.acquire([_key()])
        restored = arena_get(handle, _key())
        assert restored is not None
        assert bytes(restored.payload) == bytes(snap.payload)
        assert restored.policy_name == snap.policy_name
        assert restored.externals == snap.externals
        arena.release([_key()])
    finally:
        arena.destroy()
        _detach_all()


def test_acquire_empty_key_set_is_none():
    arena = ResidentArena()
    assert arena.acquire([]) is None


def test_refcounts_pin_segments_against_eviction():
    arena = ResidentArena()
    try:
        arena.publish(_key(0), _snap(0))
        arena.publish(_key(1), _snap(1))
        arena.acquire([_key(0)])
        assert arena.evict(all_idle=True) == 1  # only the idle one
        assert _key(0) in arena and _key(1) not in arena
        arena.release([_key(0)])
        assert arena.evict(all_idle=True) == 1
        assert len(arena) == 0
        assert arena.stats()["template_evictions"] == 2
    finally:
        arena.destroy()


def test_budget_eviction_is_lru_first():
    snap = _snap(0)
    # Budget fits one template: publishing a second evicts the idle
    # least-recently-used first.
    arena = ResidentArena(budget_bytes=len(bytes(snap.payload)) + 4096)
    try:
        arena.publish(_key(0), snap)
        arena.publish(_key(1), _snap(1))
        assert len(arena) == 1
        assert _key(1) in arena and _key(0) not in arena
        assert arena.stats()["template_evictions"] == 1
    finally:
        arena.destroy()


def test_release_of_evicted_key_is_ignored():
    arena = ResidentArena()
    try:
        arena.publish(_key(), _snap())
        arena.evict(all_idle=True)
        arena.release([_key()])  # gone already; must not raise
    finally:
        arena.destroy()


def test_eviction_makes_later_reads_miss_not_fail():
    arena = ResidentArena()
    try:
        arena.publish(_key(), _snap())
        handle = arena.acquire([_key()])
        arena.release([_key()])
        arena.evict(all_idle=True)
        assert arena_get(handle, _key()) is None  # miss, never an error
    finally:
        arena.destroy()
        _detach_all()


def test_destroy_returns_dev_shm_to_prior_state():
    before = _shm_entries()
    arena = ResidentArena()
    arena.publish(_key(0), _snap(0))
    arena.publish(_key(1), _snap(1))
    arena.acquire([_key(0)])  # even referenced segments go at shutdown
    assert _shm_entries() != before
    arena.destroy()
    assert _shm_entries() == before
    arena.destroy()  # idempotent
