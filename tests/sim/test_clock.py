"""Unit tests for the virtual clock."""

import pytest

from repro.errors import SchedulerError
from repro.sim.clock import VirtualClock


def test_starts_at_zero_by_default():
    assert VirtualClock().now_ms == 0.0


def test_custom_start():
    assert VirtualClock(250.0).now_ms == 250.0


def test_advance_moves_forward():
    clock = VirtualClock()
    clock.advance(10.5)
    clock.advance(0.5)
    assert clock.now_ms == pytest.approx(11.0)


def test_advance_zero_is_allowed():
    clock = VirtualClock(5.0)
    clock.advance(0.0)
    assert clock.now_ms == 5.0


def test_advance_negative_rejected():
    clock = VirtualClock()
    with pytest.raises(SchedulerError):
        clock.advance(-1.0)


def test_jump_to_future():
    clock = VirtualClock()
    clock.jump_to(100.0)
    assert clock.now_ms == 100.0


def test_jump_to_now_is_noop():
    clock = VirtualClock(50.0)
    clock.jump_to(50.0)
    assert clock.now_ms == 50.0


def test_jump_backwards_rejected():
    clock = VirtualClock(100.0)
    with pytest.raises(SchedulerError):
        clock.jump_to(99.0)


def test_now_s_converts_milliseconds():
    clock = VirtualClock(1500.0)
    assert clock.now_s == pytest.approx(1.5)
