"""Unit tests for SimContext."""

import pytest

from repro.sim.context import SimContext
from repro.sim.costs import CostModel


def test_fresh_contexts_are_isolated():
    a = SimContext()
    b = SimContext()
    a.consume(10.0, "proc")
    assert b.now_ms == 0.0
    assert b.recorder.busy == []


def test_consume_advances_clock_and_records_busy():
    ctx = SimContext()
    ctx.consume(12.5, "app", thread="ui", label="work")
    assert ctx.now_ms == pytest.approx(12.5)
    interval = ctx.recorder.busy[0]
    assert interval.process == "app"
    assert interval.thread == "ui"
    assert interval.start_ms == 0.0
    assert interval.duration_ms == 12.5
    assert interval.label == "work"


def test_consume_zero_or_negative_is_dropped():
    ctx = SimContext()
    ctx.consume(0.0, "app")
    ctx.consume(-5.0, "app")
    assert ctx.now_ms == 0.0
    assert ctx.recorder.busy == []


def test_custom_cost_model():
    costs = CostModel(ipc_call_ms=99.0)
    ctx = SimContext(costs=costs)
    assert ctx.costs.ipc_call_ms == 99.0


def test_schedule_and_run_until_idle():
    ctx = SimContext()
    ran = []
    ctx.schedule(10.0, lambda: ran.append(ctx.now_ms))
    ctx.run_until_idle()
    assert ran == [10.0]


def test_mark_records_point_event():
    ctx = SimContext()
    ctx.consume(5.0, "app")
    ctx.mark("rotation", detail="landscape", process="app")
    event = ctx.recorder.events[0]
    assert event.when_ms == pytest.approx(5.0)
    assert event.kind == "rotation"
    assert event.detail == "landscape"


def test_seed_threaded_to_rng():
    a = SimContext(seed=1)
    b = SimContext(seed=1)
    c = SimContext(seed=2)
    assert a.rng.uniform(0, 1) == b.rng.uniform(0, 1)
    assert a.rng.uniform(0, 1) != c.rng.uniform(0, 1)
