"""Unit tests for the cost model."""

import dataclasses

import pytest

from repro.sim.costs import DEFAULT_BOARD, DEFAULT_COSTS, BoardSpec, CostModel


def test_cost_model_is_frozen():
    with pytest.raises(dataclasses.FrozenInstanceError):
        DEFAULT_COSTS.ipc_call_ms = 5.0  # type: ignore[misc]


def test_with_overrides_returns_copy():
    modified = DEFAULT_COSTS.with_overrides(ipc_call_ms=5.0)
    assert modified.ipc_call_ms == 5.0
    assert DEFAULT_COSTS.ipc_call_ms == 0.8
    assert modified.activity_resume_ms == DEFAULT_COSTS.activity_resume_ms


def test_all_latency_constants_positive():
    for field in dataclasses.fields(CostModel):
        value = getattr(DEFAULT_COSTS, field.name)
        assert value > 0, f"{field.name} must be positive"


def test_steady_state_power_matches_paper():
    power = (
        DEFAULT_COSTS.board_idle_w
        + DEFAULT_COSTS.cpu_active_w * DEFAULT_COSTS.steady_state_cpu_fraction
    )
    assert power == pytest.approx(4.03, abs=0.02)


def test_board_spec_is_the_rk3399():
    assert DEFAULT_BOARD.name == "ROC-RK3399-PC-PLUS"
    assert DEFAULT_BOARD.cpu_cores == 6
    assert DEFAULT_BOARD.memory_mb == 2048
    assert DEFAULT_BOARD.os == "Android 10"


def test_board_spec_carries_cost_model():
    board = BoardSpec()
    assert board.costs == CostModel()
