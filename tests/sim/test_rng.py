"""Unit tests for the deterministic RNG."""

from repro.sim.rng import DeterministicRng


def test_same_seed_same_stream():
    a = DeterministicRng(7)
    b = DeterministicRng(7)
    assert [a.uniform(0, 1) for _ in range(5)] == [
        b.uniform(0, 1) for _ in range(5)
    ]


def test_different_seeds_differ():
    a = DeterministicRng(1)
    b = DeterministicRng(2)
    assert [a.uniform(0, 1) for _ in range(5)] != [
        b.uniform(0, 1) for _ in range(5)
    ]


def test_fork_is_deterministic():
    a = DeterministicRng(7).fork("workload")
    b = DeterministicRng(7).fork("workload")
    assert a.uniform(0, 1) == b.uniform(0, 1)


def test_fork_labels_are_independent():
    base = DeterministicRng(7)
    assert base.fork("x").uniform(0, 1) != base.fork("y").uniform(0, 1)


def test_fork_does_not_disturb_parent():
    a = DeterministicRng(7)
    b = DeterministicRng(7)
    a.fork("child")
    assert a.uniform(0, 1) == b.uniform(0, 1)


def test_jitter_bounds():
    rng = DeterministicRng(3)
    for _ in range(100):
        value = rng.jitter(100.0, 0.1)
        assert 90.0 <= value <= 110.0


def test_randint_bounds():
    rng = DeterministicRng(3)
    values = {rng.randint(1, 3) for _ in range(100)}
    assert values == {1, 2, 3}


def test_shuffle_returns_new_list():
    rng = DeterministicRng(3)
    items = [1, 2, 3, 4, 5]
    shuffled = rng.shuffle(items)
    assert items == [1, 2, 3, 4, 5]
    assert sorted(shuffled) == items
