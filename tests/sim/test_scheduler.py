"""Unit tests for the discrete-event scheduler."""

import pytest

from repro.errors import SchedulerError
from repro.sim.clock import VirtualClock
from repro.sim.scheduler import Scheduler


@pytest.fixture
def scheduler():
    return Scheduler(VirtualClock())


def test_events_run_in_time_order(scheduler):
    order = []
    scheduler.schedule(20, lambda: order.append("b"))
    scheduler.schedule(10, lambda: order.append("a"))
    scheduler.schedule(30, lambda: order.append("c"))
    scheduler.run_until_idle()
    assert order == ["a", "b", "c"]


def test_same_time_events_run_in_schedule_order(scheduler):
    order = []
    for tag in ("first", "second", "third"):
        scheduler.schedule(5.0, lambda tag=tag: order.append(tag))
    scheduler.run_until_idle()
    assert order == ["first", "second", "third"]


def test_clock_jumps_to_event_time(scheduler):
    seen = []
    scheduler.schedule(42.0, lambda: seen.append(scheduler.clock.now_ms))
    scheduler.run_until_idle()
    assert seen == [42.0]


def test_negative_delay_rejected(scheduler):
    with pytest.raises(SchedulerError):
        scheduler.schedule(-1.0, lambda: None)


def test_cancelled_event_does_not_run(scheduler):
    ran = []
    event = scheduler.schedule(5.0, lambda: ran.append(1))
    event.cancel()
    scheduler.run_until_idle()
    assert ran == []


def test_callback_can_schedule_more_events(scheduler):
    order = []

    def first():
        order.append("first")
        scheduler.schedule(5.0, lambda: order.append("nested"))

    scheduler.schedule(1.0, first)
    scheduler.run_until_idle()
    assert order == ["first", "nested"]
    assert scheduler.clock.now_ms == pytest.approx(6.0)


def test_run_until_stops_at_deadline(scheduler):
    ran = []
    scheduler.schedule(10.0, lambda: ran.append("early"))
    scheduler.schedule(100.0, lambda: ran.append("late"))
    scheduler.run_until(50.0)
    assert ran == ["early"]
    assert scheduler.clock.now_ms == 50.0
    scheduler.run_until_idle()
    assert ran == ["early", "late"]


def test_run_until_advances_clock_even_without_events(scheduler):
    scheduler.run_until(123.0)
    assert scheduler.clock.now_ms == 123.0


def test_late_event_runs_at_now_not_in_past(scheduler):
    """A callback that consumes time past a queued event's timestamp must
    not make the clock go backwards (the queueing-delay semantics)."""
    times = []
    scheduler.schedule(10.0, lambda: scheduler.clock.advance(50.0))
    scheduler.schedule(20.0, lambda: times.append(scheduler.clock.now_ms))
    scheduler.run_until_idle()
    assert times == [60.0]


def test_runaway_guard_raises(scheduler):
    def reschedule():
        scheduler.schedule(0.0, reschedule)

    scheduler.schedule(0.0, reschedule)
    with pytest.raises(SchedulerError, match="runaway"):
        scheduler.run_until_idle(max_events=100)


def test_pending_counts_live_events(scheduler):
    event = scheduler.schedule(1.0, lambda: None)
    scheduler.schedule(2.0, lambda: None)
    assert scheduler.pending() == 2
    event.cancel()
    assert scheduler.pending() == 1


def test_schedule_at_clamps_past_timestamps(scheduler):
    scheduler.clock.jump_to(100.0)
    ran = []
    scheduler.schedule_at(50.0, lambda: ran.append(scheduler.clock.now_ms))
    scheduler.run_until_idle()
    assert ran == [100.0]


def test_events_executed_counter(scheduler):
    for _ in range(3):
        scheduler.schedule(1.0, lambda: None)
    scheduler.run_until_idle()
    assert scheduler.events_executed == 3


def test_double_cancel_does_not_double_decrement(scheduler):
    """cancel() must be idempotent: a second call (Message.recall after
    AsyncTask.cancel, say) must not corrupt the live-event counter."""
    event = scheduler.schedule(1.0, lambda: None)
    scheduler.schedule(2.0, lambda: None)
    event.cancel()
    event.cancel()
    assert scheduler.pending() == 1
    scheduler.run_until_idle()
    assert scheduler.pending() == 0


def test_cancel_after_dispatch_does_not_corrupt_pending(scheduler):
    """An event cancelled AFTER it ran (a late AsyncTask.cancel) is a
    no-op for accounting: the dispatch already consumed its live slot."""
    events = []
    events.append(scheduler.schedule(1.0, lambda: None))
    scheduler.schedule(2.0, lambda: None)
    scheduler.run_until(1.5)
    events[0].cancel()  # already dispatched
    assert scheduler.pending() == 1
    scheduler.run_until_idle()
    assert scheduler.pending() == 0
    assert scheduler.events_executed == 2


def test_cancel_from_inside_own_callback(scheduler):
    """Self-cancel during dispatch must not decrement a consumed slot."""
    holder = {}

    def run_and_cancel():
        holder["event"].cancel()

    holder["event"] = scheduler.schedule(1.0, run_and_cancel)
    scheduler.schedule(2.0, lambda: None)
    scheduler.run_until_idle()
    assert scheduler.pending() == 0
    assert scheduler.events_executed == 2


def test_pending_matches_queue_under_churn(scheduler):
    """The O(1) counter must agree with an actual scan at every step."""
    import random

    rng = random.Random(7)
    live = []
    for step in range(200):
        if live and rng.random() < 0.4:
            live.pop(rng.randrange(len(live))).cancel()
        else:
            live.append(scheduler.schedule(rng.uniform(0, 5), lambda: None))
        actual = sum(
            1 for _, _, event in scheduler._queue if not event.cancelled
        )
        assert scheduler.pending() == actual == len(live)
    scheduler.run_until_idle()
    assert scheduler.pending() == 0


def test_event_has_slots():
    from repro.sim.scheduler import Event

    assert not hasattr(Event(0.0, 0, lambda: None), "__dict__")


def test_tracer_rebinds_dispatch(scheduler):
    """Assigning a live tracer swaps in the traced dispatch path; the
    null tracer swaps it back out (the no-trace hot path costs nothing)."""
    from repro.trace.tracer import NULL_TRACER, Tracer

    assert scheduler._dispatch == scheduler._dispatch_untraced
    scheduler.tracer = Tracer(scheduler.clock)
    assert scheduler._dispatch == scheduler._dispatch_traced
    scheduler.tracer = NULL_TRACER
    assert scheduler._dispatch == scheduler._dispatch_untraced


def test_traced_run_produces_scheduler_spans(scheduler):
    from repro.trace.tracer import Tracer

    tracer = Tracer(scheduler.clock)
    scheduler.tracer = tracer
    scheduler.schedule(1.0, lambda: None, label="tick")
    scheduler.run_until_idle()
    assert any(span.name == "tick" for span in tracer.spans)
