"""SystemSnapshot: fork-equals-fresh, round trips, refusal cases."""

import json

import pytest

from repro.apps.benchmark import make_benchmark_app
from repro.baselines.android10 import Android10Policy
from repro.baselines.runtimedroid import RuntimeDroidPolicy
from repro.core.policy import RCHDroidPolicy
from repro.engine import encode_result
from repro.errors import SnapshotError
from repro.harness.runner import (
    finish_issue,
    finish_probe,
    prepare_issue,
    prepare_probe,
    run_issue_scenario,
    run_probe,
)
from repro.sim.snapshot import SystemSnapshot
from repro.system import AndroidSystem
from repro.trace.tracer import TraceSession

POLICY_FACTORIES = {
    "android10": Android10Policy,
    "runtimedroid": RuntimeDroidPolicy,
    "rchdroid": RCHDroidPolicy,
}


def _encoded(result):
    return json.dumps(encode_result(result), sort_keys=True)


class TestForkEqualsFresh:
    @pytest.mark.parametrize("policy", sorted(POLICY_FACTORIES))
    def test_issue_scenario_matches_classic_entry_point(self, policy):
        factory = POLICY_FACTORIES[policy]
        app = make_benchmark_app(2)
        fresh = run_issue_scenario(factory, app)

        live = AndroidSystem(policy=factory(), seed=0x5EED)
        prepare_issue(live, app)
        snap = live.snapshot()
        forked = AndroidSystem.fork(snap)
        assert _encoded(finish_issue(forked, app)) == _encoded(fresh)

    @pytest.mark.parametrize("policy", sorted(POLICY_FACTORIES))
    def test_issue_scenario_with_standalone_tracer(self, policy):
        factory = POLICY_FACTORIES[policy]
        app = make_benchmark_app(2)
        fresh_sys = AndroidSystem(policy=factory(), seed=0x5EED, trace=True)
        prepare_issue(fresh_sys, app)
        fresh = finish_issue(fresh_sys, app)

        live = AndroidSystem(policy=factory(), seed=0x5EED, trace=True)
        prepare_issue(live, app)
        forked = AndroidSystem.fork(live.snapshot())
        assert _encoded(finish_issue(forked, app)) == _encoded(fresh)

    @pytest.mark.parametrize("policy", sorted(POLICY_FACTORIES))
    def test_fork_mid_async_task(self, policy):
        """The probe prefix snapshots with an async task in flight."""
        factory = POLICY_FACTORIES[policy]
        app = make_benchmark_app(2)
        fresh = run_probe(factory, app, audit_delay_ms=6_000.0)

        live = AndroidSystem(policy=factory(), seed=0x5EED)
        prepare_probe(live, app)
        forked = AndroidSystem.fork(live.snapshot())
        verdict = finish_probe(forked, app, audit_delay_ms=6_000.0)
        assert _encoded(verdict) == _encoded(fresh)

    def test_two_forks_from_one_snapshot_are_identical(self):
        app = make_benchmark_app(2)
        live = AndroidSystem(policy=RCHDroidPolicy(), seed=0x5EED)
        prepare_issue(live, app)
        snap = live.snapshot()
        first = finish_issue(AndroidSystem.fork(snap), app)
        second = finish_issue(AndroidSystem.fork(snap), app)
        assert _encoded(first) == _encoded(second)

    def test_fork_preserves_external_identity(self):
        """Shared inputs (the AppSpec) come back as the same objects."""
        app = make_benchmark_app(2)
        live = AndroidSystem(policy=RCHDroidPolicy(), seed=0x5EED)
        prepare_issue(live, app)
        forked = AndroidSystem.fork(live.snapshot())
        assert any(shared is app for shared in forked.shared_inputs())


class TestDiskRoundTrip:
    def test_bytes_round_trip_forks_identically(self):
        app = make_benchmark_app(2)
        fresh = run_issue_scenario(RCHDroidPolicy, app)

        live = AndroidSystem(policy=RCHDroidPolicy(), seed=0x5EED)
        prepare_issue(live, app)
        snap = live.snapshot()
        assert snap.size_bytes > 0
        reloaded = SystemSnapshot.from_bytes(snap.to_bytes())
        verdict = finish_issue(AndroidSystem.fork(reloaded), app)
        assert _encoded(verdict) == _encoded(fresh)

    def test_unknown_format_version_is_rejected(self):
        app = make_benchmark_app(1)
        live = AndroidSystem(policy=RCHDroidPolicy(), seed=0x5EED)
        live.launch(app)
        data = live.snapshot().to_bytes()
        with pytest.raises(SnapshotError):
            SystemSnapshot.from_bytes(data[:40])


class TestRefusals:
    def test_session_registered_tracer_cannot_snapshot(self):
        """Session tracers are observed externally; forking one would
        double-report spans, so capture refuses."""
        app = make_benchmark_app(1)
        with TraceSession():
            live = AndroidSystem(policy=RCHDroidPolicy(), seed=0x5EED)
            live.launch(app)
            with pytest.raises(SnapshotError):
                live.snapshot()

    def test_standalone_tracer_snapshots_inside_session(self):
        app = make_benchmark_app(1)
        with TraceSession():
            live = AndroidSystem(policy=RCHDroidPolicy(), seed=0x5EED,
                                 trace=True)
            live.launch(app)
            assert live.snapshot().size_bytes > 0


class TestTrimHistory:
    """Satellite of the fleet PR: history-trimmed template captures."""

    def _busy_system(self):
        app = make_benchmark_app(2)
        live = AndroidSystem(policy=RCHDroidPolicy(), seed=0x5EED)
        prepare_issue(live, app)
        # Accumulate some history worth trimming.
        live.rotate()
        live.run_for(500.0)
        return live, app

    def test_trimmed_capture_is_smaller(self):
        live, _ = self._busy_system()
        full = SystemSnapshot.capture(live)
        trimmed = SystemSnapshot.capture(live, trim_history=True)
        assert trimmed.size_bytes < full.size_bytes

    def test_capture_leaves_live_history_intact(self):
        live, _ = self._busy_system()
        recorder = live.ctx.recorder
        before = (list(recorder.busy), list(recorder.heap),
                  list(recorder.events), list(recorder.latencies))
        SystemSnapshot.capture(live, trim_history=True)
        assert (recorder.busy, recorder.heap,
                recorder.events, recorder.latencies) == before

    def test_trimmed_fork_starts_with_empty_history(self):
        live, _ = self._busy_system()
        assert live.ctx.recorder.latencies  # the trim has something to drop
        forked = SystemSnapshot.capture(live, trim_history=True).restore()
        recorder = forked.ctx.recorder
        assert recorder.busy == []
        assert recorder.heap == []
        assert recorder.events == []
        assert recorder.latencies == []

    def test_trim_preserves_crashes_and_counters(self):
        app = make_benchmark_app(2)
        live = AndroidSystem(policy=Android10Policy(), seed=0x5EED)
        live.launch(app)
        live.start_async(app)
        live.rotate()
        live.run_until_idle()  # async lands on the destroyed tree: crash
        assert live.crashed(app.package)
        forked = SystemSnapshot.capture(live, trim_history=True).restore()
        assert forked.crashed(app.package)
        assert forked.ctx.recorder.counters == live.ctx.recorder.counters

    def test_trimmed_fork_behaves_identically_post_capture(self):
        """The fork-equals-fresh contract only covers what a fork
        observes about its own future; both fork flavours must agree."""
        live, app = self._busy_system()
        trimmed = SystemSnapshot.capture(live, trim_history=True).restore()
        full = SystemSnapshot.capture(live).restore()
        for system in (trimmed, full):
            system.start_async(app)
            system.rotate()
            system.run_until_idle()
        assert not trimmed.crashed(app.package)
        trimmed_tail = trimmed.handling_times()
        full_tail = full.handling_times()[-len(trimmed_tail):] \
            if trimmed_tail else []
        assert trimmed_tail == full_tail
        assert (trimmed.memory_of(app.package)
                == full.memory_of(app.package))
        for slot in app.slots:
            assert (trimmed.read_slot(app, slot.name)
                    == full.read_slot(app, slot.name))
