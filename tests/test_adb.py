"""Unit tests for the adb-style facade (the artifact's A.5 workflow)."""

import pytest

from repro import Android10Policy, AndroidSystem, RCHDroidPolicy
from repro.adb import AdbShell, LOG_TAG
from repro.apps import make_benchmark_app


@pytest.fixture
def shell():
    system = AndroidSystem(policy=RCHDroidPolicy())
    app = make_benchmark_app(4)
    system.launch(app)
    return AdbShell(system), system, app


class TestWmSize:
    def test_wm_size_triggers_a_change(self, shell):
        adb, system, app = shell
        out = adb.wm_size("1080x1920")
        assert "1080x1920" in out
        assert len(system.handling_times()) == 1

    def test_wm_size_reset_restores_default(self, shell):
        adb, system, _ = shell
        adb.wm_size("1080x1920")
        adb.wm_size_reset()
        assert system.atms.config.width_px == 1920
        assert len(system.handling_times()) == 2

    def test_artifact_cycle_matches_fig10_workflow(self, shell):
        """A.5: wm size 1080x1920 then wm size reset -> init then flip."""
        adb, system, _ = shell
        adb.wm_size("1080x1920")
        adb.wm_size_reset()
        assert [path for _, path in system.handling_times()] == [
            "init", "flip"
        ]


class TestDumpsysMeminfo:
    def test_shows_total_pss_block(self, shell):
        adb, system, app = shell
        out = adb.dumpsys_meminfo(app.package)
        assert out.startswith("Total PSS by process:")
        assert app.package in out

    def test_reported_kb_matches_ledger(self, shell):
        adb, system, app = shell
        out = adb.dumpsys_meminfo(app.package)
        kb_text = out.splitlines()[1].split("K:")[0].strip().replace(",", "")
        assert int(kb_text) == int(system.memory_of(app.package) * 1024)

    def test_lists_all_processes_without_filter(self):
        system = AndroidSystem(policy=Android10Policy())
        system.launch(make_benchmark_app(1, package="adb.one"))
        system.launch(make_benchmark_app(1, package="adb.two"))
        out = AdbShell(system).dumpsys_meminfo()
        assert "adb.one" in out and "adb.two" in out


class TestLogcat:
    def test_zizhan_lines_carry_handling_times(self, shell):
        adb, system, _ = shell
        adb.wm_size("1080x1920")
        adb.wm_size_reset()
        times = adb.handling_times_from_logcat()
        assert times == pytest.approx(
            [ms for ms, _ in system.handling_times()], abs=0.05
        )

    def test_grep_filters(self, shell):
        adb, system, _ = shell
        adb.wm_size("1080x1920")
        assert all(LOG_TAG in line for line in adb.logcat(grep=LOG_TAG))

    def test_crash_appears_as_fatal_exception(self):
        system = AndroidSystem(policy=Android10Policy())
        app = make_benchmark_app(2)
        system.launch(app)
        system.start_async(app)
        system.rotate()
        system.run_until_idle()
        fatal = AdbShell(system).logcat(grep="FATAL EXCEPTION")
        assert len(fatal) == 1
        assert "NullPointerException" in fatal[0]

    def test_lines_are_time_sorted(self, shell):
        adb, system, _ = shell
        adb.wm_size("1080x1920")
        adb.wm_size_reset()
        lines = adb.logcat()
        assert lines == sorted(lines)
