"""Tests for the command-line entry points."""

import pytest

from repro.__main__ import main as repro_main
from repro.harness.experiments.__main__ import main as experiments_main


class TestExperimentsCli:
    def test_no_args_lists_experiments(self, capsys):
        assert experiments_main([]) == 0
        out = capsys.readouterr().out
        for key in ("table3", "fig10", "ext-robustness"):
            assert key in out

    def test_unknown_experiment_is_an_error(self, capsys):
        assert experiments_main(["nope"]) == 2
        assert "unknown experiment" in capsys.readouterr().out

    def test_runs_a_fast_experiment(self, capsys):
        assert experiments_main(["table2"]) == 0
        assert "348" in capsys.readouterr().out

    def test_runs_fig13(self, capsys):
        assert experiments_main(["fig13"]) == 0
        out = capsys.readouterr().out
        assert "Twitter" in out and "Orbot" in out


class TestReproCli:
    def test_help(self, capsys):
        assert repro_main(["--help"]) == 0
        assert "demo" in capsys.readouterr().out

    def test_demo_runs_both_policies(self, capsys):
        assert repro_main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "android10: crashed=True" in out
        assert "rchdroid: crashed=False" in out

    def test_experiment_passthrough(self, capsys):
        assert repro_main(["table2"]) == 0
        assert "Table 2" in capsys.readouterr().out

    def test_experiments_listing(self, capsys):
        assert repro_main(["experiments"]) == 0
        assert "fig10" in capsys.readouterr().out


def test_readme_quickstart_snippet_executes():
    """The README's quickstart code block must actually run."""
    import re
    from pathlib import Path

    readme = Path(__file__).resolve().parent.parent / "README.md"
    blocks = re.findall(r"```python\n(.*?)```", readme.read_text(), re.S)
    assert blocks, "README lost its quickstart block"
    exec(compile(blocks[0], "README-quickstart", "exec"), {})
