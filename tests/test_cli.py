"""Tests for the command-line entry points."""

import pytest

from repro.__main__ import main as repro_main
from repro.harness.experiments.__main__ import main as experiments_main


class TestExperimentsCli:
    def test_no_args_lists_experiments(self, capsys):
        assert experiments_main([]) == 0
        out = capsys.readouterr().out
        for key in ("table3", "fig10", "ext-robustness"):
            assert key in out

    def test_unknown_experiment_is_an_error(self, capsys):
        assert experiments_main(["nope"]) == 2
        assert "unknown experiment" in capsys.readouterr().out

    def test_runs_a_fast_experiment(self, capsys):
        assert experiments_main(["table2"]) == 0
        assert "348" in capsys.readouterr().out

    def test_runs_fig13(self, capsys):
        assert experiments_main(["fig13"]) == 0
        out = capsys.readouterr().out
        assert "Twitter" in out and "Orbot" in out


class TestEngineFlags:
    def test_jobs_and_cache_root(self, capsys, tmp_path):
        args = ["fig12", "--jobs", "2", "--cache-root", str(tmp_path)]
        assert experiments_main(args) == 0
        assert "Fig. 12" in capsys.readouterr().out
        cached = list(tmp_path.rglob("*.json"))
        assert len(cached) == 24  # 8 Table-4 apps x 3 policies

    def test_no_cache_leaves_no_cache_dir(self, capsys, tmp_path):
        args = ["fig12", "--no-cache", "--cache-root", str(tmp_path / "c")]
        assert experiments_main(args) == 0
        assert not (tmp_path / "c").exists()

    def test_cached_rerun_reports_identically(self, capsys, tmp_path):
        args = ["fig12", "--cache-root", str(tmp_path)]
        assert experiments_main(args) == 0
        first = capsys.readouterr().out
        assert experiments_main(args) == 0
        assert capsys.readouterr().out == first

    def test_jobs_needs_a_positive_integer(self, capsys):
        assert experiments_main(["fig12", "--jobs"]) == 2
        assert experiments_main(["fig12", "--jobs", "zero"]) == 2
        assert experiments_main(["fig12", "--jobs", "0"]) == 2

    def test_cache_root_needs_a_path(self, capsys):
        assert experiments_main(["fig12", "--cache-root"]) == 2

    def test_engine_config_is_restored_after_a_run(self, tmp_path, capsys):
        from repro import engine
        from repro.engine.batch import _CONFIG

        before = (_CONFIG.jobs, _CONFIG.cache, _CONFIG.cache_root)
        args = ["fig12", "--jobs", "2", "--cache-root", str(tmp_path)]
        assert experiments_main(args) == 0
        capsys.readouterr()
        after = engine.configure()  # no-op probe of the live config
        assert (after.jobs, after.cache, after.cache_root) == before


class TestReproCli:
    def test_help(self, capsys):
        assert repro_main(["--help"]) == 0
        assert "demo" in capsys.readouterr().out

    def test_demo_runs_both_policies(self, capsys):
        assert repro_main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "android10: crashed=True" in out
        assert "rchdroid: crashed=False" in out

    def test_experiment_passthrough(self, capsys):
        assert repro_main(["table2"]) == 0
        assert "Table 2" in capsys.readouterr().out

    def test_experiments_listing(self, capsys):
        assert repro_main(["experiments"]) == 0
        assert "fig10" in capsys.readouterr().out

    def test_unknown_command_exits_2_with_hint(self, capsys):
        assert repro_main(["tabel3"]) == 2  # typo'd table3
        out = capsys.readouterr().out
        assert "unknown command 'tabel3'" in out
        assert "did you mean 'table3'?" in out

    def test_unknown_command_without_a_close_match(self, capsys):
        assert repro_main(["frobnicate"]) == 2
        out = capsys.readouterr().out
        assert "known commands:" in out and "trace" in out
        assert "bench-engine" in out

    def test_bench_engine_rejects_unknown_arguments(self, capsys):
        assert repro_main(["bench-engine", "--bogus"]) == 2
        assert "unknown argument" in capsys.readouterr().err


class TestFleetCli:
    def test_fleet_runs_and_writes_canonical_report(self, capsys, tmp_path):
        import json

        out_path = tmp_path / "fleet.json"
        args = ["fleet", "--devices", "18", "--jobs", "1",
                "-o", str(out_path)]
        assert repro_main(args) == 0
        printed = capsys.readouterr().out
        assert "Per-policy rollup" in printed
        report = json.loads(out_path.read_text())
        assert report["fleet"]["devices"] == 18
        assert {row["policy"] for row in report["policies"]} == {
            "android10", "rchdroid", "runtimedroid"}

    def test_fleet_policy_filter(self, capsys):
        args = ["fleet", "--devices", "6", "--jobs", "1",
                "--policy", "rchdroid"]
        assert repro_main(args) == 0
        printed = capsys.readouterr().out
        assert "rchdroid" in printed
        assert "android10" not in printed

    def test_fleet_typo_gets_a_hint(self, capsys):
        assert repro_main(["fleeet"]) == 2
        out = capsys.readouterr().out
        assert "did you mean 'fleet'?" in out

    def test_fleet_rejects_unknown_arguments(self, capsys):
        assert repro_main(["fleet", "--bogus"]) == 2
        assert "unexpected argument" in capsys.readouterr().out

    def test_fleet_rejects_bad_values(self, capsys):
        assert repro_main(["fleet", "--devices", "many"]) == 2
        assert repro_main(["fleet", "--devices"]) == 2
        capsys.readouterr()

    def test_fleet_rejects_unknown_policy(self, capsys):
        args = ["fleet", "--devices", "6", "--policy", "nope"]
        assert repro_main(args) == 2
        assert "fleet error" in capsys.readouterr().out

    def test_fleet_oracle_sampling_joins_the_report(self, capsys, tmp_path):
        import json

        out_path = tmp_path / "fleet.json"
        args = ["fleet", "--devices", "18", "--jobs", "1",
                "--oracle", "0.5", "-o", str(out_path)]
        assert repro_main(args) == 0
        assert "Differential oracle" in capsys.readouterr().out
        report = json.loads(out_path.read_text())
        assert report["oracle"]["rate"] == 0.5
        assert report["oracle"]["sessions"] > 0

    def test_fleet_without_oracle_keeps_the_old_report_shape(
            self, capsys, tmp_path):
        import json

        out_path = tmp_path / "fleet.json"
        args = ["fleet", "--devices", "18", "--jobs", "1",
                "-o", str(out_path)]
        assert repro_main(args) == 0
        capsys.readouterr()
        assert "oracle" not in json.loads(out_path.read_text())

    def test_fleet_rejects_bad_oracle_rate(self, capsys):
        assert repro_main(["fleet", "--devices", "6",
                           "--oracle", "1.5"]) == 2
        assert "oracle rate must be within [0, 1]" in capsys.readouterr().out


class TestFleetCliZeroCopyTier:
    """PR 7 surface: --jobs auto, --stats, --checkpoint, --verify-deltas,
    --no-arena — plus the did-you-mean hint on malformed --jobs."""

    def _report_json(self, capsys, tmp_path, extra, name="fleet.json"):
        import json

        out_path = tmp_path / name
        args = ["fleet", "--devices", "18", "--seed", "7",
                "-o", str(out_path), *extra]
        assert repro_main(args) == 0
        printed = capsys.readouterr().out
        return json.loads(out_path.read_text()), printed, out_path

    def test_jobs_auto_runs(self, capsys, tmp_path):
        report, _, _ = self._report_json(
            capsys, tmp_path, ["--jobs", "auto"])
        assert report["fleet"]["devices"] == 18

    def test_jobs_typo_gets_a_did_you_mean_hint(self, capsys):
        assert repro_main(["fleet", "--jobs", "atuo"]) == 2
        out = capsys.readouterr().out
        assert "did you mean 'auto'?" in out

    def test_jobs_garbage_exits_2_without_a_bogus_hint(self, capsys):
        assert repro_main(["fleet", "--jobs", "many"]) == 2
        out = capsys.readouterr().out
        assert "worker count or 'auto'" in out
        assert "did you mean" not in out

    def test_checkpoint_every_must_be_positive(self, capsys):
        assert repro_main(["fleet", "--checkpoint-every", "0"]) == 2
        assert "--checkpoint-every must be >= 1" in capsys.readouterr().out

    def test_stats_surfaces_provisioning_counters(self, capsys, tmp_path):
        report, printed, _ = self._report_json(
            capsys, tmp_path, ["--jobs", "1", "--stats"])
        assert "Template provisioning" in printed
        assert report["cache"]["captures"] > 0
        for counter in ("disk_reads", "rebuilds", "arena_hits",
                        "arena_misses", "arena_fallbacks"):
            assert counter in report["cache"]

    def test_verify_deltas_and_no_arena_keep_bytes_identical(
            self, capsys, tmp_path):
        base, _, base_path = self._report_json(
            capsys, tmp_path, ["--jobs", "1"], name="base.json")
        for extra, name in ([["--verify-deltas"], "verified.json"],
                            [["--no-arena"], "noarena.json"]):
            report, _, path = self._report_json(
                capsys, tmp_path, ["--jobs", "1", *extra], name=name)
            assert path.read_bytes() == base_path.read_bytes()

    def test_checkpointed_run_resumes_identically(self, capsys, tmp_path):
        base, _, base_path = self._report_json(
            capsys, tmp_path, ["--jobs", "1"], name="base.json")
        ckpt = tmp_path / "fleet.ckpt"
        _, _, first_path = self._report_json(
            capsys, tmp_path,
            ["--jobs", "1", "--checkpoint", str(ckpt),
             "--checkpoint-every", "1"], name="first.json")
        assert ckpt.exists()
        _, _, resumed_path = self._report_json(
            capsys, tmp_path,
            ["--jobs", "1", "--checkpoint", str(ckpt)], name="resumed.json")
        assert first_path.read_bytes() == base_path.read_bytes()
        assert resumed_path.read_bytes() == base_path.read_bytes()


class TestOracleCli:
    def test_session_reports_clean_and_writes_json(self, capsys, tmp_path):
        import json

        out_path = tmp_path / "oracle.json"
        args = ["oracle", "fleet.notepad", "--seed", "7",
                "-o", str(out_path)]
        assert repro_main(args) == 0
        printed = capsys.readouterr().out
        assert "differential oracle report" in printed
        assert "CLEAN (no simulator bugs)" in printed
        report = json.loads(out_path.read_text())
        assert report["sessions"] == 1
        assert report["totals"]["SIMULATOR_BUG"] == 0

    def test_resolves_apps_by_display_name_too(self, capsys):
        assert repro_main(["oracle", "FleetNotepad", "--seed", "7"]) == 0
        capsys.readouterr()

    def test_policy_subset_is_honoured(self, capsys):
        args = ["oracle", "fleet.notepad", "--seed", "7",
                "--policy", "rchdroid", "--policy", "runtimedroid"]
        assert repro_main(args) == 0
        printed = capsys.readouterr().out
        assert "rchdroid" in printed
        assert "android10" not in printed

    def test_unknown_app_is_an_error_with_known_list(self, capsys):
        assert repro_main(["oracle", "nope.app"]) == 2
        assert "fleet.notepad" in capsys.readouterr().out

    def test_duplicate_policy_is_an_oracle_error(self, capsys):
        args = ["oracle", "fleet.notepad",
                "--policy", "rchdroid", "--policy", "rchdroid"]
        assert repro_main(args) == 2
        assert "oracle error" in capsys.readouterr().out

    def test_missing_app_prints_usage(self, capsys):
        assert repro_main(["oracle"]) == 2
        assert "usage" in capsys.readouterr().out


class TestFleetWorkloadFlags:
    def test_named_workload_runs(self, capsys, tmp_path):
        import json

        out_path = tmp_path / "fleet.json"
        args = ["fleet", "--devices", "18", "--jobs", "1",
                "--workload", "storm", "-o", str(out_path)]
        assert repro_main(args) == 0
        capsys.readouterr()
        report = json.loads(out_path.read_text())
        assert report["fleet"]["devices"] == 18

    def test_workload_file_replays_on_every_member(
            self, capsys, tmp_path):
        from repro.workload.codec import save_workload
        from repro.workload.ir import Rotate, Wait, Workload, Write

        path = tmp_path / "fixed.json"
        save_workload(path, Workload((
            Write(0), Wait(200.0), Rotate(), Wait(600.0),
        )))
        out_path = tmp_path / "fleet.json"
        args = ["fleet", "--devices", "9", "--jobs", "1",
                "--workload", str(path), "-o", str(out_path)]
        assert repro_main(args) == 0
        capsys.readouterr()

    def test_phases_plan_runs(self, capsys, tmp_path):
        out_path = tmp_path / "fleet.json"
        args = ["fleet", "--devices", "18", "--jobs", "1",
                "--phases", "rotation-storm", "-o", str(out_path)]
        assert repro_main(args) == 0
        assert out_path.exists()
        capsys.readouterr()

    def test_unknown_workload_name_gets_a_hint(self, capsys):
        assert repro_main(["fleet", "--workload", "strom"]) == 2
        out = capsys.readouterr().out
        assert "fleet error" in out
        assert "did you mean 'storm'" in out

    def test_unknown_phases_name_is_exit_2(self, capsys):
        assert repro_main(["fleet", "--phases", "nope"]) == 2
        assert "fleet error" in capsys.readouterr().out

    def test_workload_and_phases_are_mutually_exclusive(self, capsys):
        args = ["fleet", "--workload", "storm",
                "--phases", "rotation-storm"]
        assert repro_main(args) == 2
        assert "mutually exclusive" in capsys.readouterr().out

    def test_missing_workload_file_is_exit_2(self, capsys, tmp_path):
        args = ["fleet", "--workload", str(tmp_path / "nope.json")]
        assert repro_main(args) == 2
        assert "fleet error" in capsys.readouterr().out


class TestWorkloadCli:
    def test_list_names_both_registries(self, capsys):
        assert repro_main(["workload", "list"]) == 0
        out = capsys.readouterr().out
        for name in ("default", "storm", "idle", "config-churn",
                     "calm", "rotation-storm", "diurnal"):
            assert name in out

    def test_show_dumps_canonical_ir(self, capsys):
        assert repro_main(["workload", "show", "storm"]) == 0
        out = capsys.readouterr().out
        assert "workload storm" in out
        assert "config changes" in out

    def test_show_phase_plan_describes_the_plan(self, capsys):
        assert repro_main(["workload", "show", "rotation-storm"]) == 0
        out = capsys.readouterr().out
        assert "plan rotation-storm" in out
        assert "phase 0" in out

    def test_show_writes_a_loadable_ir_file(self, capsys, tmp_path):
        from repro.workload.codec import load_workload
        from repro.workload.generate import device_workload
        from repro.workload.library import WORKLOADS

        path = tmp_path / "ir.json"
        args = ["workload", "show", "idle", "--seed", "9",
                "--member", "3", "-o", str(path)]
        assert repro_main(args) == 0
        capsys.readouterr()
        assert load_workload(path) == device_workload(
            WORKLOADS["idle"], 9, 3)

    def test_show_unknown_name_lists_candidates(self, capsys):
        assert repro_main(["workload", "show", "strom"]) == 2
        assert "storm" in capsys.readouterr().out

    def test_record_compiles_a_traced_session(self, capsys, tmp_path):
        from repro.workload.codec import load_workload

        path = tmp_path / "recorded.json"
        args = ["workload", "record", "--seed", "7", "-o", str(path)]
        assert repro_main(args) == 0
        out = capsys.readouterr().out
        assert "ops compiled from" in out
        recorded = load_workload(path)
        assert recorded.config_changes() > 0

    def test_record_rejects_unknown_policy(self, capsys):
        args = ["workload", "record", "--policy", "nope"]
        assert repro_main(args) == 2
        capsys.readouterr()

    def test_no_subcommand_prints_usage(self, capsys):
        assert repro_main(["workload"]) == 2
        assert "usage" in capsys.readouterr().out

    def test_unknown_subcommand_is_exit_2(self, capsys):
        assert repro_main(["workload", "nope"]) == 2
        capsys.readouterr()


class TestTraceCli:
    def test_trace_demo_writes_verified_chrome_trace(self, capsys, tmp_path):
        import json

        out_path = tmp_path / "demo.json"
        assert repro_main(["trace", "demo", "-o", str(out_path)]) == 0
        printed = capsys.readouterr().out
        assert "replay check OK" in printed
        document = json.loads(out_path.read_text())
        assert document["otherData"]["span_count"] > 0
        categories = set(document["otherData"]["categories"])
        assert {"scheduler", "looper", "lifecycle", "atms", "ipc",
                "migration"} <= categories

    def test_trace_no_verify_skips_the_replay(self, capsys, tmp_path):
        out_path = tmp_path / "demo.json"
        args = ["trace", "demo", "-o", str(out_path), "--no-verify"]
        assert repro_main(args) == 0
        printed = capsys.readouterr().out
        assert "replay check" not in printed
        assert out_path.exists()

    def test_trace_without_target_is_usage_error(self, capsys):
        assert repro_main(["trace"]) == 2
        assert "traceable targets" in capsys.readouterr().out

    def test_trace_unknown_target(self, capsys):
        assert repro_main(["trace", "nope"]) == 2
        assert "unknown command 'nope'" in capsys.readouterr().out

    def test_trace_output_flag_needs_a_path(self, capsys):
        assert repro_main(["trace", "demo", "-o"]) == 2
        assert "needs a path" in capsys.readouterr().out


class TestHuntCli:
    def test_hunt_runs_and_writes_canonical_report(self, capsys, tmp_path):
        import json

        out_path = tmp_path / "hunt.json"
        args = ["hunt", "--apps", "6", "--jobs", "1", "--no-cache",
                "-o", str(out_path)]
        assert repro_main(args) == 0
        printed = capsys.readouterr().out
        assert "generated apps" in printed
        assert "simulator bugs: none" in printed
        report = json.loads(out_path.read_text())
        assert report["hunt"]["apps"] == 6
        assert report["simulator_bugs"] == []
        assert set(report["by_policy"]) == {
            "android10", "rchdroid", "runtimedroid"}

    def test_hunt_rules_lists_the_catalog(self, capsys):
        assert repro_main(["hunt", "rules"]) == 0
        printed = capsys.readouterr().out
        for rule in ("bare-field-state", "missing-on-save",
                     "stale-async-ref", "mid-migration-write"):
            assert rule in printed

    def test_unknown_subcommand_gets_a_hint(self, capsys):
        assert repro_main(["hunt", "rulez"]) == 2
        out = capsys.readouterr().out
        assert "unknown command 'rulez'" in out
        assert "did you mean 'rules'" in out

    def test_unknown_flag_exits_2_with_usage(self, capsys):
        assert repro_main(["hunt", "--frobnicate"]) == 2
        out = capsys.readouterr().out
        assert "unexpected argument '--frobnicate'" in out
        assert "usage" in out

    def test_unknown_policy_gets_a_hint(self, capsys):
        assert repro_main(["hunt", "--policy", "androld10"]) == 2
        out = capsys.readouterr().out
        assert "unknown command 'androld10'" in out
        assert "did you mean 'android10'" in out

    def test_option_missing_its_value_exits_2(self, capsys):
        assert repro_main(["hunt", "--apps"]) == 2
        assert "missing value" in capsys.readouterr().out

    def test_bad_apps_value_exits_2(self, capsys):
        assert repro_main(["hunt", "--apps", "several"]) == 2
        assert "bad option value" in capsys.readouterr().out

    def test_daemon_rejects_local_only_flags(self, capsys):
        args = ["hunt", "--daemon", "http://127.0.0.1:1",
                "--jobs", "2", "--no-cache"]
        assert repro_main(args) == 2
        out = capsys.readouterr().out
        assert "--jobs" in out
        assert "--no-cache" in out

    def test_unreachable_daemon_falls_back_in_process(
            self, capsys, tmp_path):
        out_path = tmp_path / "hunt.json"
        args = ["hunt", "--apps", "4", "--daemon", "http://127.0.0.1:1",
                "-o", str(out_path)]
        assert repro_main(args) == 0
        assert "generated apps" in capsys.readouterr().out
        assert out_path.exists()


def test_readme_quickstart_snippet_executes():
    """The README's quickstart code block must actually run."""
    import re
    from pathlib import Path

    readme = Path(__file__).resolve().parent.parent / "README.md"
    blocks = re.findall(r"```python\n(.*?)```", readme.read_text(), re.S)
    assert blocks, "README lost its quickstart block"
    exec(compile(blocks[0], "README-quickstart", "exec"), {})
