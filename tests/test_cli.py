"""Tests for the command-line entry points."""

import pytest

from repro.__main__ import main as repro_main
from repro.harness.experiments.__main__ import main as experiments_main


class TestExperimentsCli:
    def test_no_args_lists_experiments(self, capsys):
        assert experiments_main([]) == 0
        out = capsys.readouterr().out
        for key in ("table3", "fig10", "ext-robustness"):
            assert key in out

    def test_unknown_experiment_is_an_error(self, capsys):
        assert experiments_main(["nope"]) == 2
        assert "unknown experiment" in capsys.readouterr().out

    def test_runs_a_fast_experiment(self, capsys):
        assert experiments_main(["table2"]) == 0
        assert "348" in capsys.readouterr().out

    def test_runs_fig13(self, capsys):
        assert experiments_main(["fig13"]) == 0
        out = capsys.readouterr().out
        assert "Twitter" in out and "Orbot" in out


class TestReproCli:
    def test_help(self, capsys):
        assert repro_main(["--help"]) == 0
        assert "demo" in capsys.readouterr().out

    def test_demo_runs_both_policies(self, capsys):
        assert repro_main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "android10: crashed=True" in out
        assert "rchdroid: crashed=False" in out

    def test_experiment_passthrough(self, capsys):
        assert repro_main(["table2"]) == 0
        assert "Table 2" in capsys.readouterr().out

    def test_experiments_listing(self, capsys):
        assert repro_main(["experiments"]) == 0
        assert "fig10" in capsys.readouterr().out

    def test_unknown_command_exits_2_with_hint(self, capsys):
        assert repro_main(["tabel3"]) == 2  # typo'd table3
        out = capsys.readouterr().out
        assert "unknown command 'tabel3'" in out
        assert "did you mean 'table3'?" in out

    def test_unknown_command_without_a_close_match(self, capsys):
        assert repro_main(["frobnicate"]) == 2
        out = capsys.readouterr().out
        assert "known commands:" in out and "trace" in out


class TestTraceCli:
    def test_trace_demo_writes_verified_chrome_trace(self, capsys, tmp_path):
        import json

        out_path = tmp_path / "demo.json"
        assert repro_main(["trace", "demo", "-o", str(out_path)]) == 0
        printed = capsys.readouterr().out
        assert "replay check OK" in printed
        document = json.loads(out_path.read_text())
        assert document["otherData"]["span_count"] > 0
        categories = set(document["otherData"]["categories"])
        assert {"scheduler", "looper", "lifecycle", "atms", "ipc",
                "migration"} <= categories

    def test_trace_no_verify_skips_the_replay(self, capsys, tmp_path):
        out_path = tmp_path / "demo.json"
        args = ["trace", "demo", "-o", str(out_path), "--no-verify"]
        assert repro_main(args) == 0
        printed = capsys.readouterr().out
        assert "replay check" not in printed
        assert out_path.exists()

    def test_trace_without_target_is_usage_error(self, capsys):
        assert repro_main(["trace"]) == 2
        assert "traceable targets" in capsys.readouterr().out

    def test_trace_unknown_target(self, capsys):
        assert repro_main(["trace", "nope"]) == 2
        assert "unknown command 'nope'" in capsys.readouterr().out

    def test_trace_output_flag_needs_a_path(self, capsys):
        assert repro_main(["trace", "demo", "-o"]) == 2
        assert "needs a path" in capsys.readouterr().out


def test_readme_quickstart_snippet_executes():
    """The README's quickstart code block must actually run."""
    import re
    from pathlib import Path

    readme = Path(__file__).resolve().parent.parent / "README.md"
    blocks = re.findall(r"```python\n(.*?)```", readme.read_text(), re.S)
    assert blocks, "README lost its quickstart block"
    exec(compile(blocks[0], "README-quickstart", "exec"), {})
