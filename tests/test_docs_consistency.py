"""Documentation consistency guards.

DESIGN.md promises a per-experiment index and EXPERIMENTS.md a
paper-vs-measured record; these tests keep both in lock-step with the
actual experiment registry so the docs cannot silently rot.
"""

from pathlib import Path

import pytest

from repro.harness.experiments import REGISTRY

ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def design_text():
    return (ROOT / "DESIGN.md").read_text()


@pytest.fixture(scope="module")
def experiments_text():
    return (ROOT / "EXPERIMENTS.md").read_text()


def test_design_confirms_paper_identity(design_text):
    assert "Transparent Runtime Change Handling for Android Apps" in design_text
    assert "ASPLOS 2023" in design_text
    assert "No title collision" in design_text


def test_design_lists_every_paper_artifact(design_text):
    for artifact in ("Table 1", "Table 2", "Table 3", "Table 5", "Fig 7",
                     "Fig 8", "Fig 9", "Fig 10", "Fig 11", "Fig 12",
                     "Fig 13", "Fig 14"):
        assert artifact in design_text, artifact


def test_experiments_md_covers_every_paper_artifact(experiments_text):
    for artifact in ("Table 3", "Fig. 7", "Fig. 8", "Fig. 9", "Fig. 10a",
                     "Fig. 10b", "Fig. 11", "Fig. 12", "Fig. 13",
                     "Fig. 14a", "Fig. 14b", "Table 5", "§5.6", "§5.7",
                     "Table 1", "Table 2", "Table 4"):
        assert artifact in experiments_text, artifact


def test_experiments_md_documents_extensions(experiments_text):
    for ext in ("ext-fleet", "ext-fragments", "ext-oracle", "ext-probes",
                "ext-robustness", "ext-sessions"):
        assert ext in experiments_text, ext


def test_registry_ids_have_benchmark_modules():
    benchmark_files = "\n".join(
        path.name for path in (ROOT / "benchmarks").glob("test_*.py")
    )
    expectations = {
        "table2": "table2", "table3": "table3", "table5": "table5",
        "fig7": "fig7", "fig8": "fig8", "fig9": "fig9", "fig10": "fig10",
        "fig11": "fig11", "fig12": "fig12", "fig13": "fig13",
        "fig14": "fig14", "sec5.6-energy": "sec56",
        "sec5.7-deployment": "sec57", "ext-fleet": "ext_fleet",
        "ext-fragments": "ext_fragments", "ext-oracle": "ext_oracle",
        "ext-probes": "ext_probes", "ext-robustness": "ext_robustness",
        "ext-sessions": "ext_sessions",
    }
    assert set(expectations) == set(REGISTRY)
    for marker in expectations.values():
        assert marker in benchmark_files, marker


def test_readme_mentions_all_examples():
    readme = (ROOT / "README.md").read_text()
    for example in (ROOT / "examples").glob("*.py"):
        assert example.name in readme, example.name


def test_known_deviations_section_exists(experiments_text):
    assert "Known deviations" in experiments_text
