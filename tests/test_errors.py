"""Unit tests for the exception taxonomy."""

import pytest

from repro.errors import (
    AppCrash,
    BadTokenException,
    LifecycleError,
    NullPointerException,
    SchedulerError,
    SimulationError,
    WindowLeakedException,
    WrongThreadError,
)


def test_app_crashes_are_not_simulation_errors():
    """App-level crashes must never be confused with simulator bugs:
    loopers catch AppCrash and kill the process; SimulationError
    propagates to the test harness."""
    assert not issubclass(AppCrash, SimulationError)
    assert not issubclass(SimulationError, AppCrash)


@pytest.mark.parametrize(
    "exc_type",
    [NullPointerException, WindowLeakedException, BadTokenException],
)
def test_crash_types_subclass_appcrash(exc_type):
    assert issubclass(exc_type, AppCrash)


@pytest.mark.parametrize(
    "exc_type", [SchedulerError, WrongThreadError, LifecycleError]
)
def test_simulator_errors_subclass_simulation_error(exc_type):
    assert issubclass(exc_type, SimulationError)


def test_appcrash_carries_timestamp():
    crash = NullPointerException("stale view", when_ms=117_000.0)
    assert crash.when_ms == 117_000.0
    assert "stale view" in str(crash)


def test_appcrash_timestamp_optional_and_mutable():
    crash = NullPointerException("boom")
    assert crash.when_ms is None
    crash.when_ms = 5.0  # loopers stamp it at dispatch time
    assert crash.when_ms == 5.0
