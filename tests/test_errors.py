"""Unit tests for the exception taxonomy."""

import pytest

from repro.errors import (
    AppCrash,
    BadTokenException,
    LifecycleError,
    NullPointerException,
    SchedulerError,
    SimulationError,
    WindowLeakedException,
    WrongThreadError,
)


def test_app_crashes_are_not_simulation_errors():
    """App-level crashes must never be confused with simulator bugs:
    loopers catch AppCrash and kill the process; SimulationError
    propagates to the test harness."""
    assert not issubclass(AppCrash, SimulationError)
    assert not issubclass(SimulationError, AppCrash)


@pytest.mark.parametrize(
    "exc_type",
    [NullPointerException, WindowLeakedException, BadTokenException],
)
def test_crash_types_subclass_appcrash(exc_type):
    assert issubclass(exc_type, AppCrash)


@pytest.mark.parametrize(
    "exc_type", [SchedulerError, WrongThreadError, LifecycleError]
)
def test_simulator_errors_subclass_simulation_error(exc_type):
    assert issubclass(exc_type, SimulationError)


def test_appcrash_carries_timestamp():
    crash = NullPointerException("stale view", when_ms=117_000.0)
    assert crash.when_ms == 117_000.0
    assert "stale view" in str(crash)


def test_appcrash_timestamp_optional_and_mutable():
    crash = NullPointerException("boom")
    assert crash.when_ms is None
    crash.when_ms = 5.0  # loopers stamp it at dispatch time
    assert crash.when_ms == 5.0


class TestSubsystemErrorTaxonomy:
    """Every public subsystem error is a SimulationError with a useful
    message — callers can catch the base class at a subsystem boundary
    and still print something actionable."""

    def test_every_public_error_is_exported(self):
        import repro.errors as errors_module

        public = {
            name for name in dir(errors_module)
            if isinstance(getattr(errors_module, name), type)
            and issubclass(getattr(errors_module, name), Exception)
        }
        for expected in ("ReplayDivergenceError", "EngineError",
                         "SnapshotError", "FleetError", "OracleError",
                         "WorkloadError", "ServeError", "HuntError"):
            assert expected in public


def _subsystem_errors():
    from repro.errors import (
        EngineError,
        FleetError,
        HuntError,
        OracleError,
        ReplayDivergenceError,
        ServeError,
        SnapshotError,
        WorkloadError,
    )

    return [ReplayDivergenceError, EngineError, SnapshotError,
            FleetError, OracleError, WorkloadError, ServeError,
            HuntError]


@pytest.mark.parametrize("exc_type", _subsystem_errors())
def test_subsystem_errors_subclass_simulation_error(exc_type):
    assert issubclass(exc_type, SimulationError)
    assert not issubclass(exc_type, AppCrash)


@pytest.mark.parametrize("exc_type", _subsystem_errors())
def test_subsystem_errors_carry_their_message(exc_type):
    error = exc_type("lp0 on fire")
    assert "lp0 on fire" in str(error)
    with pytest.raises(SimulationError):
        raise error


def test_subsystem_errors_are_distinct_branches():
    """Catching one subsystem's error must not swallow another's."""
    types = _subsystem_errors()
    for i, left in enumerate(types):
        for right in types[i + 1:]:
            assert not issubclass(left, right)
            assert not issubclass(right, left)
