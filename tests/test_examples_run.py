"""Smoke tests: the fast examples must run to completion.

Examples are documentation that executes; a broken example is a broken
README.  The slow ones (gc_tuning, top100_survey, monkey_fuzzing) are
exercised through their underlying experiments in the benchmark harness;
here we run the quick ones end to end.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, argv: list[str] | None = None) -> None:
    old_argv = sys.argv
    sys.argv = [name] + (argv or [])
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv


def test_quickstart(capsys):
    run_example("quickstart.py")
    out = capsys.readouterr().out
    assert "app crashed        : True" in out
    assert "app crashed        : False" in out


def test_rotation_crash_demo(capsys):
    run_example("rotation_crash_demo.py")
    out = capsys.readouterr().out
    assert "CRASH (NullPointerException)" in out
    assert "CRASH (WindowLeakedException)" in out
    assert out.count("state LOST") == 3  # bare-field under both + view-state under stock


def test_artifact_workflow(capsys):
    run_example("artifact_workflow.py")
    out = capsys.readouterr().out
    assert "Total PSS by process" in out
    assert "path=flip" in out
    assert 'grep "zizhan"' in out


def test_monkey_fuzzing_small(capsys):
    run_example("monkey_fuzzing.py", ["3"])
    out = capsys.readouterr().out
    assert "Monkey fuzzing: 3 random event storms" in out
