"""Golden regression pins: exact expected values for canonical runs.

The simulator is fully deterministic, so the canonical scenarios have
exact expected outputs.  These pins catch any unintended behavioural
drift (a cost-model edit, an extra IPC hop, a changed event ordering)
that the shape-level assertions elsewhere would let through.  If you
change the cost model *deliberately*, re-derive these numbers and update
EXPERIMENTS.md in the same commit.
"""

import pytest

from repro import Android10Policy, AndroidSystem, RCHDroidPolicy
from repro.apps import make_benchmark_app


def test_golden_fig10_anchor_points():
    system = AndroidSystem(policy=Android10Policy())
    app = make_benchmark_app(4)
    system.launch(app)
    system.rotate()
    assert system.last_handling_ms() == pytest.approx(141.59, abs=0.05)

    system = AndroidSystem(policy=RCHDroidPolicy())
    app = make_benchmark_app(4)
    system.launch(app)
    system.rotate()
    assert system.last_handling_ms() == pytest.approx(156.92, abs=0.05)
    system.rotate()
    assert system.last_handling_ms() == pytest.approx(88.95, abs=0.05)


def test_golden_launch_memory():
    system = AndroidSystem(policy=Android10Policy())
    app = make_benchmark_app(4)
    system.launch(app)
    # process 32 + extra 8 + activity 1.4 + decor/container/button 3*0.03
    # + button 0 + 4 images (0.03 + 0.55) each = 43.81
    assert system.memory_of(app.package) == pytest.approx(43.81, abs=0.02)


def test_golden_crash_time():
    system = AndroidSystem(policy=Android10Policy())
    app = make_benchmark_app(4)
    system.launch(app)
    system.start_async(app)
    launch_done = system.now_ms
    system.rotate()
    system.run_until_idle()
    crash = system.ctx.recorder.crashes[0]
    # The task was started right after launch and runs 5 s of wall time.
    assert crash.when_ms == pytest.approx(launch_done + 5_000.0, abs=1.0)


def test_golden_migration_batch_cost():
    from repro.core.policy import RCHDroidPolicy as Policy

    policy = Policy()
    system = AndroidSystem(policy=policy)
    app = make_benchmark_app(4)
    system.launch(app)
    system.start_async(app)
    system.rotate()
    system.run_until_idle()
    engine = policy.engine_for(app.package)
    # dispatch base 7.8 + 4 views x 0.78
    assert engine.last_batch_cost_ms() == pytest.approx(10.92, abs=0.01)


def test_golden_event_counts_are_stable():
    system = AndroidSystem(policy=RCHDroidPolicy())
    app = make_benchmark_app(4)
    system.launch(app)
    system.rotate()
    system.rotate()
    counters = system.ctx.recorder.counters
    assert counters["coinflip-miss"] == 1
    assert counters["coinflip-hit"] == 1
    assert counters["instance-flips"] == 1
    assert len(system.ctx.recorder.events_of_kind("enter-shadow")) == 2
    assert len(system.ctx.recorder.events_of_kind("enter-sunny")) == 2
    assert len(system.ctx.recorder.events_of_kind("mapping-built")) == 1


def test_golden_chrome_trace_for_demo_scenario():
    """The quickstart demo, traced, exports a stable Chrome trace.

    Pins the per-policy span counts, the total non-metadata event count,
    and the category set — any added/removed hook firing, dropped IPC
    hop, or event reordering shows up here as a count or set change.
    """
    from repro.trace import export

    tracers = []
    for factory in (Android10Policy, RCHDroidPolicy):
        system = AndroidSystem(policy=factory(), trace=True)
        app = make_benchmark_app(4)
        system.launch(app)
        system.start_async(app)
        system.rotate()
        system.run_until_idle()
        tracers.append((system.policy.name, system.tracer))

    by_policy = dict(tracers)
    assert by_policy["android10"].span_count == 12
    assert by_policy["rchdroid"].span_count == 35
    assert by_policy["android10"].categories() == {
        "atms", "ipc", "lifecycle", "looper", "process", "scheduler",
    }
    assert by_policy["rchdroid"].categories() == {
        "atms", "ipc", "lifecycle", "looper", "migration", "scheduler",
    }

    doc = export.chrome_trace_dict(tracers)
    spans = [event for event in doc["traceEvents"] if event["ph"] != "M"]
    assert len(spans) == 47
    assert sum(1 for event in spans if event["ph"] == "i") == 1  # the crash
    assert doc["otherData"]["span_count"] == 47
    assert doc["otherData"]["categories"] == [
        "atms", "ipc", "lifecycle", "looper", "migration", "process",
        "scheduler",
    ]


def test_golden_determinism_end_to_end():
    """Two identical runs produce byte-identical traces."""
    from repro.metrics.export import run_to_dict

    def run():
        system = AndroidSystem(policy=RCHDroidPolicy(), seed=42)
        app = make_benchmark_app(4)
        system.launch(app)
        system.start_async(app)
        system.rotate()
        system.run_until_idle()
        system.rotate()
        return run_to_dict(system.ctx.recorder)

    assert run() == run()
