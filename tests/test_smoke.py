"""End-to-end smoke tests: the headline scenario of the paper.

Launch the benchmark app, start its AsyncTask, rotate mid-flight:
stock Android crashes with a NullPointer (Fig. 1(a)); RCHDroid survives
and the sunny view tree shows the migrated update (Fig. 1(b)).
"""

from repro import Android10Policy, AndroidSystem, RCHDroidPolicy
from repro.apps import make_benchmark_app
from repro.apps.benchmark import IMAGE_ID_BASE


def test_stock_android_crashes_on_async_after_rotate():
    system = AndroidSystem(policy=Android10Policy())
    app = make_benchmark_app(num_images=4)
    system.launch(app)
    system.start_async(app)
    system.rotate()
    system.run_until_idle()
    assert system.crashed(app.package)
    crash = system.ctx.recorder.crashes[0]
    assert crash.exception == "NullPointerException"
    # Process death zeroes the heap (the Fig. 9 memory drop).
    assert system.memory_of(app.package) == 0.0


def test_rchdroid_survives_async_after_rotate_and_migrates():
    system = AndroidSystem(policy=RCHDroidPolicy())
    app = make_benchmark_app(num_images=4)
    system.launch(app)
    system.start_async(app)
    path = system.rotate()
    assert path == "init"
    system.run_until_idle()
    assert not system.crashed(app.package)
    # The sunny (foreground) tree received the async update via migration.
    foreground = system.foreground_activity(app.package)
    assert foreground is not None
    first_image = foreground.require_view(IMAGE_ID_BASE)
    assert first_image.get_attr("drawable") == f"loaded-{IMAGE_ID_BASE}"


def test_rchdroid_second_rotate_takes_flip_path():
    system = AndroidSystem(policy=RCHDroidPolicy())
    app = make_benchmark_app(num_images=4)
    system.launch(app)
    assert system.rotate() == "init"
    assert system.rotate() == "flip"
    flip_ms = system.last_handling_ms()
    episodes = system.handling_times()
    init_ms = episodes[0][0]
    assert flip_ms is not None and flip_ms < init_ms


def test_rchdroid_preserves_view_state_across_rotations():
    system = AndroidSystem(policy=RCHDroidPolicy())
    app = make_benchmark_app(num_images=2)
    system.launch(app)
    system.write_slot(app, "first_drawable", "user-picked")
    system.rotate()
    assert system.read_slot(app, "first_drawable") == "user-picked"
    system.rotate()  # flip path
    assert system.read_slot(app, "first_drawable") == "user-picked"


def test_stock_android_loses_non_auto_saved_view_state():
    system = AndroidSystem(policy=Android10Policy())
    app = make_benchmark_app(num_images=2)
    system.launch(app)
    system.write_slot(app, "first_drawable", "user-picked")
    system.rotate()
    assert system.read_slot(app, "first_drawable") != "user-picked"
