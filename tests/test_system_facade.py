"""Unit tests for the AndroidSystem facade and top-level API."""

import pytest

import repro
from repro import Android10Policy, AndroidSystem, RCHDroidPolicy
from repro.apps import make_benchmark_app
from repro.apps.dsl import AsyncScript


class TestConstruction:
    def test_default_policy_is_stock(self):
        assert AndroidSystem().policy.name == "android10"

    def test_systems_are_isolated(self):
        a = AndroidSystem()
        b = AndroidSystem()
        app = make_benchmark_app(1)
        a.launch(app)
        assert b.atms.stack.tasks == []
        assert b.now_ms == 0.0

    def test_custom_initial_config(self):
        from repro.android.res import DEFAULT_PORTRAIT

        system = AndroidSystem(initial_config=DEFAULT_PORTRAIT)
        assert system.atms.config == DEFAULT_PORTRAIT

    def test_version_and_exports(self):
        assert repro.__version__ == "1.0.0"
        for name in repro.__all__:
            assert hasattr(repro, name), name


class TestVerbs:
    def test_run_for_advances_time(self):
        system = AndroidSystem()
        system.run_for(1234.0)
        assert system.now_ms == 1234.0

    def test_rotate_returns_path(self):
        system = AndroidSystem(policy=RCHDroidPolicy())
        system.launch(make_benchmark_app(1))
        assert system.rotate() == "init"

    def test_write_slot_without_foreground_raises(self):
        system = AndroidSystem()
        app = make_benchmark_app(1)
        with pytest.raises(LookupError):
            system.write_slot(app, "first_drawable", "x")

    def test_start_async_requires_script(self):
        from repro.apps.dsl import AppSpec, two_orientation_resources
        from repro.android.views.inflate import ViewSpec

        app = AppSpec(
            package="noscript", label="n",
            resources=two_orientation_resources(
                "main", [ViewSpec("TextView", view_id=1)]
            ),
        )
        system = AndroidSystem()
        system.launch(app)
        with pytest.raises(ValueError):
            system.start_async(app)

    def test_start_async_with_explicit_script(self):
        system = AndroidSystem(policy=RCHDroidPolicy())
        app = make_benchmark_app(1)
        system.launch(app)
        script = AsyncScript("custom", 500.0, ((10, "text", "done"),))
        task = system.start_async(app, script)
        system.run_until_idle()
        assert task.finished

    def test_handling_times_and_last(self):
        system = AndroidSystem(policy=RCHDroidPolicy())
        system.launch(make_benchmark_app(1))
        assert system.last_handling_ms() is None
        system.rotate()
        system.rotate()
        episodes = system.handling_times()
        assert len(episodes) == 2
        assert system.last_handling_ms() == episodes[-1][0]

    def test_foreground_activity_by_package_vs_global(self):
        system = AndroidSystem()
        one = make_benchmark_app(1, package="f.one")
        two = make_benchmark_app(1, package="f.two")
        system.launch(one)
        system.launch(two)
        assert system.foreground_activity().app.package == "f.two"
        assert system.foreground_activity("f.one").app.package == "f.one"
        assert system.foreground_activity("missing") is None


class TestDialogLeakLogging:
    def test_open_dialog_at_relaunch_is_logged_not_crashed(self):
        system = AndroidSystem(policy=Android10Policy())
        app = make_benchmark_app(1)
        system.launch(app)
        system.foreground_activity(app.package).show_dialog("progress")
        system.rotate()  # relaunch destroys with the dialog open
        assert not system.crashed(app.package)
        assert system.ctx.recorder.counters["window-leaks"] == 1
        assert system.ctx.recorder.events_of_kind("window-leak")

    def test_rchdroid_keeps_dialog_holder_alive(self):
        system = AndroidSystem(policy=RCHDroidPolicy())
        app = make_benchmark_app(1)
        system.launch(app)
        system.foreground_activity(app.package).show_dialog("progress")
        system.rotate()
        assert system.ctx.recorder.counters["window-leaks"] == 0
