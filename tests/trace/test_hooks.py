"""The framework hook points: coverage when traced, no-ops when not."""

from repro import Android10Policy, AndroidSystem, RCHDroidPolicy
from repro.apps import make_benchmark_app
from repro.metrics.export import run_to_dict
from repro.trace.hooks import HOOK_POINTS, install_tracing, is_traced, uninstall_tracing
from repro.trace.span import CATEGORIES
from repro.trace.tracer import NULL_TRACER, Tracer


def run_demo_scenario(policy_factory, trace):
    system = AndroidSystem(policy=policy_factory(), trace=trace)
    app = make_benchmark_app(4)
    system.launch(app)
    system.start_async(app)
    system.rotate()
    system.run_until_idle()
    return system


class TestTracedRun:
    def test_rchdroid_run_covers_the_hooked_layers(self):
        system = run_demo_scenario(RCHDroidPolicy, trace=True)
        categories = system.tracer.categories()
        # The acceptance bar: at least five of the instrumented layers
        # fire in one transparent-handling episode.
        assert {"scheduler", "looper", "lifecycle", "atms", "ipc",
                "migration"} <= categories

    def test_stock_crash_records_a_process_instant(self):
        system = run_demo_scenario(Android10Policy, trace=True)
        (crash,) = system.tracer.spans_of("process")
        assert crash.name == "process-crash" and crash.is_instant
        assert crash.args["exception"] == "NullPointerException"

    def test_spans_nest_under_their_dispatch(self):
        system = run_demo_scenario(RCHDroidPolicy, trace=True)
        spans = {span.span_id: span for span in system.tracer.spans}
        migrations = [s for s in spans.values() if s.category == "migration"]
        assert migrations, "lazy migration never fired"
        for span in migrations:
            # A migration happens inside the async return's dispatch chain.
            assert span.parent_id in spans
        lifecycles = [s for s in spans.values() if s.category == "lifecycle"]
        launch_names = {s.name for s in lifecycles}
        assert any(name.startswith("perform-launch:") for name in launch_names)

    def test_every_declared_hook_point_names_a_real_site(self):
        import importlib

        assert set(HOOK_POINTS) == set(CATEGORIES)
        for target in HOOK_POINTS.values():
            # Longest importable prefix is the module; the rest must be
            # reachable attributes (class, then optionally a method).
            parts = target.split(".")
            for split in range(len(parts), 0, -1):
                try:
                    obj = importlib.import_module(".".join(parts[:split]))
                    break
                except ModuleNotFoundError:
                    continue
            else:  # pragma: no cover - the assert below reports it
                raise AssertionError(f"no importable module in {target}")
            for attr in parts[split:]:
                obj = getattr(obj, attr)


class TestDisabledRun:
    def test_zero_spans_when_tracing_is_off(self):
        system = run_demo_scenario(RCHDroidPolicy, trace=False)
        assert system.tracer is NULL_TRACER
        assert system.ctx.tracer is NULL_TRACER
        assert system.ctx.scheduler.tracer is NULL_TRACER
        assert system.tracer.span_count == 0
        assert not is_traced(system.ctx)

    def test_default_is_off_outside_a_session(self):
        system = run_demo_scenario(RCHDroidPolicy, trace=None)
        assert system.tracer is NULL_TRACER

    def test_tracing_does_not_perturb_the_simulation(self):
        """The no-op microbench: a traced and an untraced run of the same
        seed capture byte-identical recorder state — instrumenting the
        hot paths added zero extra events, costs, or clock movement."""
        traced = run_demo_scenario(RCHDroidPolicy, trace=True)
        untraced = run_demo_scenario(RCHDroidPolicy, trace=False)
        assert run_to_dict(traced.ctx.recorder) == run_to_dict(untraced.ctx.recorder)
        assert traced.now_ms == untraced.now_ms


class TestInstallUninstall:
    def test_install_points_context_and_scheduler(self):
        system = AndroidSystem(policy=Android10Policy())
        tracer = Tracer(system.ctx.clock)
        install_tracing(system.ctx, tracer)
        assert system.ctx.tracer is tracer
        assert system.ctx.scheduler.tracer is tracer
        assert is_traced(system.ctx)
        uninstall_tracing(system.ctx)
        assert system.ctx.tracer is NULL_TRACER
        assert system.ctx.scheduler.tracer is NULL_TRACER
