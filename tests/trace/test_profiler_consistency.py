"""Cross-check the tracer against the windowed profiler.

The simulated device is single-threaded and synchronous work advances
the virtual clock only through ``SimContext.consume`` — which is exactly
what the profiler's busy intervals record.  So inside any synchronous
traced window (an ATMS launch or ``update-configuration`` span) the CPU
busy time and the span duration are two views of the same clock
movement and must agree.
"""

import pytest

from repro import Android10Policy, AndroidSystem, RCHDroidPolicy
from repro.apps import make_benchmark_app


def traced_rotation_run(policy_factory):
    system = AndroidSystem(policy=policy_factory(), trace=True)
    app = make_benchmark_app(4)
    system.launch(app)
    system.rotate()
    system.rotate()
    return system, app


def busy_ms_in_window(recorder, start_ms, end_ms):
    """Total recorded busy time overlapping the window, all processes."""
    return sum(
        max(0.0, min(interval.end_ms, end_ms) - max(interval.start_ms, start_ms))
        for interval in recorder.busy
    )


@pytest.mark.parametrize("factory", [Android10Policy, RCHDroidPolicy])
class TestBusyIntervalsMatchSpans:
    def test_every_busy_interval_is_inside_a_span(self, factory):
        system, _ = traced_rotation_run(factory)
        windows = [
            (span.start_ms, span.end_ms)
            for span in system.tracer.spans
            if span.parent_id is None and not span.is_instant
        ]
        for interval in system.ctx.recorder.busy:
            assert any(
                start - 1e-9 <= interval.start_ms
                and interval.end_ms <= end + 1e-9
                for start, end in windows
            ), f"busy interval {interval} escapes every traced span"

    def test_synchronous_span_duration_equals_busy_time(self, factory):
        system, _ = traced_rotation_run(factory)
        synchronous = [
            span for span in system.tracer.spans
            if span.name in ("launch", "update-configuration")
        ]
        assert len(synchronous) == 3  # one launch + two rotations
        for span in synchronous:
            busy = busy_ms_in_window(
                system.ctx.recorder, span.start_ms, span.end_ms
            )
            assert busy == pytest.approx(span.duration_ms, abs=1e-6), span

    def test_profiler_total_matches_root_span_total(self, factory):
        system, app = traced_rotation_run(factory)
        roots = [
            span for span in system.tracer.spans
            if span.parent_id is None and not span.is_instant
        ]
        total_spans = sum(span.duration_ms for span in roots)
        total_busy = system.profiler.total_busy_ms(app.package)
        assert total_busy == pytest.approx(total_spans, abs=1e-6)

    def test_category_attribution_partitions_each_episode(self, factory):
        """The fig9 breakdown invariant: per handling episode, the
        per-category self times sum to the episode's duration."""
        from repro.trace import export

        system, _ = traced_rotation_run(factory)
        spans = list(system.tracer.spans)
        episodes = [s for s in spans if s.name == "update-configuration"]
        assert episodes
        for episode in episodes:
            by_category = export.category_times_ms(
                spans, episode.start_ms, episode.end_ms
            )
            assert sum(by_category.values()) == pytest.approx(
                episode.duration_ms, abs=1e-6
            )
            assert by_category.get("atms", 0.0) > 0.0
