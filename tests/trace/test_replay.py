"""Record/replay verification: determinism proved, tampering caught."""

import pytest

from repro import AndroidSystem, RCHDroidPolicy
from repro.apps import make_benchmark_app
from repro.errors import ReplayDivergenceError
from repro.trace import replay
from repro.trace.tracer import Tracer


def traced_scenario() -> Tracer:
    """A fresh system, same seed every call — the replay contract."""
    system = AndroidSystem(policy=RCHDroidPolicy(), seed=42, trace=True)
    app = make_benchmark_app(4)
    system.launch(app)
    system.start_async(app)
    system.rotate()
    system.run_until_idle()
    system.rotate()
    return system.tracer


class TestVerifyReplay:
    def test_identical_runs_verify(self):
        snap = replay.verify_replay(traced_scenario)
        assert snap == replay.snapshot(traced_scenario())
        assert len(snap) > 0

    def test_three_way_verification(self):
        replay.verify_replay(traced_scenario, runs=3)

    def test_needs_at_least_two_runs(self):
        with pytest.raises(ValueError):
            replay.verify_replay(traced_scenario, runs=1)

    def test_different_seed_diverges(self):
        def other_seed() -> Tracer:
            system = AndroidSystem(policy=RCHDroidPolicy(), seed=7, trace=True)
            app = make_benchmark_app(4)
            system.launch(app)
            system.rotate()
            system.rotate()  # the coin flip depends on the seeded RNG
            return system.tracer

        recorded = replay.snapshot(traced_scenario())
        replayed = replay.snapshot(other_seed())
        assert replay.diff_snapshots(recorded, replayed) is not None


class TestDiff:
    def test_identical_snapshots_have_no_divergence(self):
        snap = replay.snapshot(traced_scenario())
        assert replay.diff_snapshots(snap, list(snap)) is None

    def test_tampered_field_is_named(self):
        recorded = replay.snapshot(traced_scenario())
        tampered = [dict(entry) for entry in recorded]
        tampered[3]["name"] = "evil"
        divergence = replay.diff_snapshots(recorded, tampered)
        assert divergence is not None
        assert divergence.index == 3 and divergence.field == "name"
        assert divergence.replayed == "evil"
        assert "span #3" in divergence.describe()

    def test_perturbed_timestamp_is_caught(self):
        recorded = replay.snapshot(traced_scenario())
        tampered = [dict(entry) for entry in recorded]
        tampered[0]["end_ms"] = tampered[0]["end_ms"] + 0.001
        divergence = replay.diff_snapshots(recorded, tampered)
        assert divergence is not None and divergence.field == "end_ms"

    def test_missing_span_is_caught(self):
        recorded = replay.snapshot(traced_scenario())
        divergence = replay.diff_snapshots(recorded, recorded[:-1])
        assert divergence is not None
        assert divergence.field == "span_count"
        assert divergence.index == len(recorded) - 1

    def test_check_replay_raises_loudly(self):
        recorded = replay.snapshot(traced_scenario())
        tampered = [dict(entry) for entry in recorded]
        tampered[0]["category"] = "wrong"
        with pytest.raises(ReplayDivergenceError, match="category"):
            replay.check_replay(recorded, tampered)


class TestSnapshotIo:
    def test_save_load_round_trip(self, tmp_path):
        snap = replay.snapshot(traced_scenario())
        path = tmp_path / "snap.json"
        replay.save_snapshot(str(path), snap)
        assert replay.load_snapshot(str(path)) == snap

    def test_snapshot_spans_rehydrate_for_export(self):
        from repro.trace import export

        snap = replay.snapshot(traced_scenario())
        spans = replay.snapshot_spans(snap)
        assert len(spans) == len(snap)
        selfs = export.self_times_ms(spans)
        assert all(value >= 0.0 for value in selfs.values())


class TestCollectDivergences:
    """The bounded multi-divergence collector the oracle diffs with."""

    def test_identical_snapshots_collect_nothing(self):
        snap = replay.snapshot(traced_scenario())
        assert replay.collect_divergences(snap, list(snap)) == []

    def test_collects_every_tampered_field(self):
        recorded = replay.snapshot(traced_scenario())
        tampered = [dict(entry) for entry in recorded]
        tampered[1]["name"] = "evil"
        tampered[4]["category"] = "worse"
        found = replay.collect_divergences(recorded, tampered)
        assert [(d.index, d.field) for d in found] == [
            (1, "name"), (4, "category")]

    def test_max_diffs_bounds_the_scan(self):
        recorded = replay.snapshot(traced_scenario())
        tampered = [dict(entry) for entry in recorded]
        for entry in tampered:
            entry["name"] = "evil"
        found = replay.collect_divergences(recorded, tampered, max_diffs=3)
        assert len(found) == 3

    def test_max_diffs_must_be_positive(self):
        with pytest.raises(ValueError):
            replay.collect_divergences([], [], max_diffs=0)

    def test_length_mismatch_reported_after_field_diffs(self):
        recorded = replay.snapshot(traced_scenario())
        truncated = [dict(entry) for entry in recorded[:-2]]
        found = replay.collect_divergences(recorded, truncated)
        assert found[-1].field == "span_count"
        assert found[-1].index == len(truncated)

    def test_first_divergence_matches_single_diff_api(self):
        """diff_snapshots is exactly collect_divergences truncated to 1 —
        the legacy single-divergence contract must not drift."""
        recorded = replay.snapshot(traced_scenario())
        tampered = [dict(entry) for entry in recorded]
        tampered[2]["name"] = "evil"
        tampered[5]["name"] = "worse"
        single = replay.diff_snapshots(recorded, tampered)
        multi = replay.collect_divergences(recorded, tampered)
        assert (single.index, single.field) == (multi[0].index, multi[0].field)
