"""Unit tests for the span model."""

from repro.trace.span import (
    CATEGORIES,
    KIND_INSTANT,
    KIND_SPAN,
    Span,
    SpanContext,
)


def make_span(**overrides):
    base = dict(
        span_id=1,
        parent_id=None,
        name="launch",
        category="atms",
        start_ms=10.0,
        end_ms=25.5,
        process="com.example",
        thread="server",
        args={"change": "orientation"},
    )
    base.update(overrides)
    return Span(**base)


class TestSpan:
    def test_duration(self):
        assert make_span().duration_ms == 15.5

    def test_open_span_has_no_duration(self):
        span = make_span(end_ms=None)
        assert span.is_open
        assert span.duration_ms == 0.0

    def test_instant_kind(self):
        span = make_span(kind=KIND_INSTANT, end_ms=10.0)
        assert span.is_instant
        assert not make_span().is_instant

    def test_context_carries_identity(self):
        context = make_span(span_id=7, parent_id=3).context()
        assert context == SpanContext(7, 3, "atms", 0)

    def test_dict_round_trip(self):
        span = make_span()
        clone = Span.from_dict(span.to_dict())
        assert clone.to_dict() == span.to_dict()
        assert clone.args == {"change": "orientation"}
        assert clone.kind == KIND_SPAN

    def test_from_dict_defaults(self):
        minimal = {
            "span_id": 1,
            "parent_id": None,
            "name": "x",
            "category": "ipc",
            "start_ms": 0.0,
            "end_ms": 1.0,
        }
        span = Span.from_dict(minimal)
        assert span.process == "" and span.thread == ""
        assert span.args == {} and span.kind == KIND_SPAN


def test_categories_cover_the_instrumented_layers():
    assert set(CATEGORIES) == {
        "scheduler", "looper", "lifecycle", "atms", "ipc",
        "migration", "process",
    }
