"""Chrome trace-event export, time attribution, and text renderers."""

import json

import pytest

from repro.sim.clock import VirtualClock
from repro.trace import export
from repro.trace.span import Span
from repro.trace.tracer import Tracer


@pytest.fixture
def tracer():
    clock = VirtualClock()
    tracer = Tracer(clock, label="run1")
    with tracer.span("outer", "atms", process="com.example", thread="server"):
        clock.advance(2.0)
        with tracer.span("hop", "ipc", process="com.example", thread="binder"):
            clock.advance(1.0)
        clock.advance(3.0)
    tracer.instant("crash", "process", process="com.example")
    return tracer


class TestChromeTrace:
    def test_document_shape(self, tracer):
        doc = export.chrome_trace_dict(tracer)
        assert set(doc) == {"traceEvents", "displayTimeUnit", "otherData"}
        assert doc["otherData"]["span_count"] == 3
        assert doc["otherData"]["runs"] == ["run1"]
        assert doc["otherData"]["categories"] == ["atms", "ipc", "process"]
        json.dumps(doc)  # must be JSON-serializable as-is

    def test_duration_events_in_microseconds(self, tracer):
        doc = export.chrome_trace_dict(tracer)
        events = {
            event["name"]: event
            for event in doc["traceEvents"]
            if event["ph"] == "X"
        }
        assert events["outer"]["ts"] == 0.0
        assert events["outer"]["dur"] == 6_000.0  # 6 simulated ms
        assert events["hop"]["ts"] == 2_000.0
        assert events["hop"]["dur"] == 1_000.0
        assert events["hop"]["args"]["parent_id"] == events["outer"]["args"]["span_id"]

    def test_instants_and_metadata(self, tracer):
        doc = export.chrome_trace_dict(tracer)
        phases = [event["ph"] for event in doc["traceEvents"]]
        assert phases.count("i") == 1
        names = [
            event["args"]["name"]
            for event in doc["traceEvents"]
            if event["ph"] == "M" and event["name"] == "process_name"
        ]
        assert names == ["run1/com.example"]
        threads = {
            event["args"]["name"]
            for event in doc["traceEvents"]
            if event["ph"] == "M" and event["name"] == "thread_name"
        }
        assert threads == {"server", "binder", "main"}

    def test_multiple_runs_get_distinct_pids(self, tracer):
        other = Tracer(VirtualClock(), label="run2")
        with other.span("outer", "atms", process="com.example"):
            pass
        doc = export.chrome_trace_dict([("run1", tracer), ("run2", other)])
        pids = {
            event["args"]["name"]: event["pid"]
            for event in doc["traceEvents"]
            if event["ph"] == "M" and event["name"] == "process_name"
        }
        assert len(set(pids.values())) == len(pids) == 2

    def test_write_round_trips_through_json(self, tracer, tmp_path):
        path = tmp_path / "trace.json"
        assert export.write_chrome_trace(str(path), tracer) == str(path)
        loaded = json.loads(path.read_text())
        assert loaded == json.loads(json.dumps(export.chrome_trace_dict(tracer)))


class TestTimeAttribution:
    def test_self_times_subtract_direct_children(self, tracer):
        spans = list(tracer.spans)
        selfs = export.self_times_ms(spans)
        by_name = {span.name: selfs[span.span_id] for span in spans}
        assert by_name["outer"] == pytest.approx(5.0)  # 6 total - 1 child
        assert by_name["hop"] == pytest.approx(1.0)
        assert by_name["crash"] == 0.0

    def test_self_times_partition_the_total(self, tracer):
        spans = list(tracer.spans)
        selfs = export.self_times_ms(spans)
        roots = [span for span in spans if span.parent_id is None]
        assert sum(selfs.values()) == pytest.approx(
            sum(span.duration_ms for span in roots)
        )

    def test_category_times_respect_a_window(self, tracer):
        spans = list(tracer.spans)
        # Window covering only the ipc hop (simulated ms 2..3).
        windowed = export.category_times_ms(spans, 2.0, 3.0)
        assert windowed["ipc"] == pytest.approx(1.0)
        assert windowed["atms"] == pytest.approx(0.0)
        total = export.category_times_ms(spans)
        assert total["atms"] == pytest.approx(5.0)
        assert total["ipc"] == pytest.approx(1.0)

    def test_clipping_never_goes_negative(self):
        span = Span(1, None, "x", "atms", start_ms=10.0, end_ms=20.0)
        assert export.self_times_ms([span], 30.0, 40.0)[1] == 0.0


class TestTextRenderers:
    def test_summary_mentions_categories_and_hot_spans(self, tracer):
        text = export.summary(tracer)
        assert "trace run1: 3 spans" in text
        assert "by category" in text and "top" in text
        for category in ("atms", "ipc", "process"):
            assert category in text

    def test_folded_stacks_format(self, tracer):
        lines = export.folded_stacks(tracer).splitlines()
        assert "outer 5000" in lines
        assert "outer;hop 1000" in lines
        for line in lines:
            stack, weight = line.rsplit(" ", 1)
            assert stack and int(weight) > 0
