"""Unit tests for the tracer: nesting, ring buffer, sampling, sessions."""

import pytest

from repro.sim.clock import VirtualClock
from repro.trace.tracer import (
    NULL_TRACER,
    NullTracer,
    TraceSession,
    Tracer,
    active_session,
    resolve_tracer,
)


@pytest.fixture
def clock():
    return VirtualClock()


@pytest.fixture
def tracer(clock):
    return Tracer(clock, label="test")


class TestNesting:
    def test_sequential_spans_are_roots(self, tracer, clock):
        with tracer.span("a", "atms"):
            clock.advance(5.0)
        with tracer.span("b", "atms"):
            clock.advance(3.0)
        a, b = tracer.spans
        assert a.parent_id is None and b.parent_id is None
        assert a.duration_ms == 5.0 and b.duration_ms == 3.0
        assert b.start_ms == a.end_ms == 5.0

    def test_nested_spans_link_to_parent(self, tracer, clock):
        with tracer.span("outer", "scheduler") as outer:
            with tracer.span("inner", "ipc") as inner:
                clock.advance(1.0)
            assert inner.parent_id == outer.span_id
        inner_done, outer_done = tracer.spans  # completion order
        assert inner_done.name == "inner"
        assert inner_done.parent_id == outer_done.span_id

    def test_current_context_tracks_depth(self, tracer):
        assert tracer.current_context() is None
        with tracer.span("outer", "scheduler"):
            with tracer.span("inner", "ipc"):
                context = tracer.current_context()
                assert context is not None
                assert context.category == "ipc" and context.depth == 2
        assert tracer.current_context() is None

    def test_end_closes_forgotten_children(self, tracer, clock):
        outer = tracer.begin("outer", "scheduler")
        tracer.begin("leaked", "ipc")
        clock.advance(2.0)
        tracer.end(outer)  # must not leave "leaked" open forever
        assert tracer.current_context() is None
        by_name = {span.name: span for span in tracer.spans}
        assert not by_name["leaked"].is_open
        assert by_name["leaked"].parent_id == outer.span_id

    def test_exception_still_closes_span(self, tracer, clock):
        with pytest.raises(RuntimeError):
            with tracer.span("boom", "atms"):
                clock.advance(1.0)
                raise RuntimeError("x")
        (span,) = tracer.spans
        assert span.duration_ms == 1.0 and not span.is_open

    def test_instant_records_zero_duration(self, tracer, clock):
        clock.advance(4.0)
        span = tracer.instant("crash", "process", process="com.example")
        assert span is not None and span.is_instant
        assert span.start_ms == span.end_ms == 4.0


class TestRingBuffer:
    def test_capacity_bounds_the_buffer(self, clock):
        tracer = Tracer(clock, capacity=3)
        for index in range(5):
            with tracer.span(f"s{index}", "looper"):
                clock.advance(1.0)
        assert tracer.span_count == 3
        assert tracer.dropped == 2
        assert [span.name for span in tracer.spans] == ["s2", "s3", "s4"]

    def test_invalid_capacity_rejected(self, clock):
        with pytest.raises(ValueError):
            Tracer(clock, capacity=0)

    def test_clear_resets_everything(self, tracer, clock):
        with tracer.span("a", "atms"):
            clock.advance(1.0)
        tracer.clear()
        assert tracer.span_count == 0 and tracer.dropped == 0
        with tracer.span("b", "atms"):
            pass
        assert tracer.spans[0].span_id == 1  # ids restart


class TestSampling:
    def test_keeps_one_in_n_deterministically(self, clock):
        tracer = Tracer(clock, sample_rates={"looper": 3})
        for index in range(9):
            with tracer.span(f"m{index}", "looper"):
                clock.advance(1.0)
        kept = [span.name for span in tracer.spans]
        assert kept == ["m0", "m3", "m6"]  # the 1st, 4th, 7th of the category
        assert tracer.sampled_out == 6

    def test_sampling_is_per_category(self, clock):
        tracer = Tracer(clock, sample_rates={"looper": 2})
        with tracer.span("kept-looper", "looper"):
            pass
        with tracer.span("dropped-looper", "looper"):
            pass
        with tracer.span("atms-span", "atms"):
            pass
        assert {span.name for span in tracer.spans} == {
            "kept-looper", "atms-span",
        }

    def test_two_identical_runs_sample_identically(self, clock):
        def run():
            tracer = Tracer(VirtualClock(), sample_rates={"ipc": 4})
            for index in range(13):
                with tracer.span(f"hop{index}", "ipc"):
                    pass
            return [span.name for span in tracer.spans]

        assert run() == run()


class TestNullTracer:
    def test_records_nothing(self):
        null = NullTracer()
        with null.span("a", "atms"):
            null.instant("b", "process")
        assert null.spans == () and null.span_count == 0
        assert null.categories() == set()
        assert null.current_context() is None
        assert not null.enabled

    def test_span_handle_is_shared(self):
        """The no-op path must not allocate per call."""
        null = NullTracer()
        assert null.span("a", "atms") is null.span("b", "ipc")
        assert null.span("a", "atms") is NULL_TRACER.span("c", "looper")


class TestTraceSession:
    def test_registers_one_tracer_per_run(self, clock):
        with TraceSession() as session:
            first = session.tracer_for(clock, "android10")
            second = session.tracer_for(clock, "rchdroid")
        assert session.tracers == [first, second]
        assert session.labeled() == [
            ("android10", first), ("rchdroid", second),
        ]

    def test_duplicate_labels_are_deduped(self, clock):
        with TraceSession() as session:
            session.tracer_for(clock, "rchdroid")
            second = session.tracer_for(clock, "rchdroid")
        assert second.label == "rchdroid#2"

    def test_nested_sessions_rejected(self):
        with TraceSession():
            with pytest.raises(RuntimeError):
                with TraceSession():
                    pass
        assert active_session() is None

    def test_session_closes_even_on_error(self):
        with pytest.raises(RuntimeError):
            with TraceSession():
                raise RuntimeError("x")
        assert active_session() is None

    def test_aggregates_across_tracers(self, clock):
        with TraceSession() as session:
            first = session.tracer_for(clock)
            second = session.tracer_for(clock)
        with first.span("a", "atms"):
            pass
        with second.span("b", "ipc"):
            pass
        assert session.span_count() == 2
        assert session.categories() == {"atms", "ipc"}


class TestResolveTracer:
    def test_true_makes_a_fresh_tracer(self, clock):
        tracer = resolve_tracer(True, clock, label="run")
        assert isinstance(tracer, Tracer) and tracer.label == "run"

    def test_false_and_none_default_to_null(self, clock):
        assert resolve_tracer(False, clock) is NULL_TRACER
        assert resolve_tracer(None, clock) is NULL_TRACER

    def test_instance_passes_through(self, clock):
        mine = Tracer(clock)
        assert resolve_tracer(mine, clock) is mine
        assert resolve_tracer(NULL_TRACER, clock) is NULL_TRACER

    def test_none_joins_an_active_session(self, clock):
        with TraceSession() as session:
            tracer = resolve_tracer(None, clock, label="rchdroid")
            assert tracer in session.tracers
            # False still forces tracing off inside a session.
            assert resolve_tracer(False, clock) is NULL_TRACER
