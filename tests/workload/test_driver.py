"""The shared device driver: profile semantics across consumers."""

import pytest

from repro import Android10Policy, RCHDroidPolicy
from repro.android.views.inflate import ViewSpec
from repro.apps.dsl import AppSpec, StateSlot, StorageKind, \
    two_orientation_resources
from repro.errors import WorkloadError
from repro.system import AndroidSystem
from repro.workload.driver import DriverProfile, DriveResult, drive
from repro.workload.ir import (
    Audit,
    Kill,
    Rotate,
    Wait,
    Workload,
    Write,
)


def slot_app() -> AppSpec:
    return AppSpec(
        package="drv.app", label="d",
        resources=two_orientation_resources(
            "main", [ViewSpec("TextView", view_id=10)]
        ),
        slots=(StateSlot("note", StorageKind.VIEW_ATTR,
                         view_id=10, attr="text"),),
    )


def launched(policy_factory, app, seed=7):
    system = AndroidSystem(policy=policy_factory(), seed=seed)
    system.launch(app)
    system.run_for(300.0)
    return system


def profile(**overrides):
    defaults = dict(
        write_value=lambda step: f"v{step}",
        initial_expected={"note": "v0"},
    )
    defaults.update(overrides)
    return DriverProfile(**defaults)


class TestProfileValidation:
    def test_unknown_epilogue_raises(self):
        with pytest.raises(WorkloadError, match="epilogue"):
            profile(epilogue="shrug")


class TestDriveSemantics:
    def test_settle_audit_counts_stock_loss(self):
        app = slot_app()
        system = launched(Android10Policy, app)
        workload = Workload((
            Write(0, slot=0), Wait(200.0), Rotate(), Wait(600.0),
        ))
        result = drive(system, app, workload, profile())
        assert result.counts["rotate"] == 1
        assert result.loss_events >= 1       # stock loses the note
        assert result.audits >= 1

    def test_transparent_policy_loses_nothing(self):
        app = slot_app()
        system = launched(RCHDroidPolicy, app)
        workload = Workload((
            Write(0, slot=0), Wait(200.0), Rotate(), Wait(600.0),
        ))
        result = drive(system, app, workload, profile())
        assert result.loss_events == 0
        assert not result.crashed

    def test_reenter_lost_restores_the_expected_value(self):
        app = slot_app()
        system = launched(Android10Policy, app)
        workload = Workload((
            Write(0, slot=0), Wait(200.0), Rotate(), Wait(600.0),
        ))
        drive(system, app, workload, profile())
        assert system.read_slot(app, "note") == "v0"

    def test_kill_then_op_counts_a_relaunch(self):
        app = slot_app()
        system = launched(RCHDroidPolicy, app)
        workload = Workload((
            Kill(), Wait(300.0), Write(1, slot=0), Wait(300.0),
        ))
        result = drive(system, app, workload, profile())
        assert result.process_deaths == 1
        assert result.relaunches == 1

    def test_explicit_audit_targets_one_slot(self):
        app = slot_app()
        system = launched(RCHDroidPolicy, app)
        workload = Workload((Write(1, slot=0), Wait(200.0), Audit(0)))
        result = drive(
            system, app, workload,
            profile(settle_audits=False, relaunch_audit=False,
                    epilogue="none"),
        )
        assert result.audits == 1
        assert result.loss_events == 0

    def test_none_epilogue_never_drains(self):
        # "none" stops the clock where the op stream ends; "audit"
        # drains the scheduler, so its session runs strictly longer.
        def final_time(epilogue):
            app = slot_app()
            system = launched(RCHDroidPolicy, app)
            result = drive(system, app, Workload((Rotate(),)),
                           profile(epilogue=epilogue))
            assert isinstance(result, DriveResult)
            return system.now_ms

        assert final_time("none") < final_time("audit")

    def test_handling_ms_excludes_prelaunch_events(self):
        app = slot_app()
        system = launched(Android10Policy, app)
        baseline = len(system.handling_times())
        result = drive(
            system, app, Workload((Rotate(), Wait(600.0))), profile()
        )
        assert result.handling_baseline == baseline
        assert len(result.handling_ms) >= 1

    def test_empty_write_policy(self):
        bare = AppSpec(
            package="drv.bare", label="b",
            resources=two_orientation_resources("main", []),
        )
        counted = drive(
            launched(RCHDroidPolicy, bare), bare,
            Workload((Write(0), Wait(100.0))),
            profile(initial_expected={}),
        )
        skipped = drive(
            launched(RCHDroidPolicy, bare), bare,
            Workload((Write(0), Wait(100.0))),
            profile(initial_expected={}, count_empty_writes=False),
        )
        assert counted.counts.get("write") == 1
        assert "write" not in skipped.counts
