"""Generator core: spec validation and IR/tuple byte-compat."""

import pytest

from repro.errors import FleetError
from repro.fleet.population import device_script
from repro.workload.generate import (
    DEFAULT_POPULATION,
    PopulationSpec,
    device_workload,
)


class TestPopulationSpecValidation:
    """Malformed distributions raise at construction, naming the field."""

    def test_default_is_valid(self):
        PopulationSpec()

    @pytest.mark.parametrize("kwargs, field", [
        ({"min_ops": -1}, "min_ops"),
        ({"min_ops": 5, "max_ops": 2}, "max_ops"),
        ({"min_gap_ms": -0.5}, "min_gap_ms"),
        ({"min_gap_ms": float("nan")}, "min_gap_ms"),
        ({"min_gap_ms": 100.0, "max_gap_ms": 10.0}, "max_gap_ms"),
        ({"weights": ()}, "weights"),
        ({"weights": (("rotate",),)}, "weights"),
        ({"weights": (("teleport", 1.0),)}, "teleport"),
        ({"weights": (("rotate", float("inf")),)}, "rotate"),
        ({"weights": (("rotate", -1.0),)}, "rotate"),
        ({"weights": (("rotate", "heavy"),)}, "rotate"),
        ({"weights": (("rotate", 0.0), ("kill", 0.0))}, "total weight"),
    ])
    def test_invalid_spec_names_the_field(self, kwargs, field):
        with pytest.raises(FleetError, match=field):
            PopulationSpec(**kwargs)


class TestDeviceWorkload:
    def test_pure_in_seed_and_member(self):
        first = device_workload(DEFAULT_POPULATION, 0x5EED, 7)
        second = device_workload(DEFAULT_POPULATION, 0x5EED, 7)
        assert first == second

    def test_matches_legacy_script_bytes(self):
        # The stationary path must keep the pre-IR generator's exact
        # tuple output — the committed fleet baselines depend on it.
        for member in range(20):
            workload = device_workload(DEFAULT_POPULATION, 0x5EED, member)
            assert workload.to_tuples() == device_script(
                DEFAULT_POPULATION, 0x5EED, member
            )

    def test_every_session_has_a_config_change(self):
        for member in range(50):
            workload = device_workload(DEFAULT_POPULATION, 0x5EED, member)
            assert workload.config_changes() >= 1
