"""Session IR: op value types, wire forms, and codec round-trips."""

import pickle

import pytest

from repro.errors import WorkloadError
from repro.workload.codec import (
    WORKLOAD_FORMAT,
    WORKLOAD_FORMAT_VERSION,
    load_workload,
    save_workload,
    workload_from_dict,
    workload_from_json,
    workload_to_dict,
    workload_to_json,
)
from repro.workload.ir import (
    CONFIG_CHANGE_KINDS,
    OP_KINDS,
    Audit,
    Kill,
    Locale,
    Night,
    Op,
    Resize,
    Rotate,
    StartAsync,
    Wait,
    Workload,
    Write,
    op_from_dict,
    op_from_tuple,
)

#: At least one instance of every registered op kind, with non-default
#: field values where the kind has fields.
SAMPLE_OPS = (
    Rotate(),
    Resize(1812, 2176),
    Locale("ja-JP"),
    Night(True),
    Write(3),
    Write(7, slot=0),
    StartAsync(),
    Kill(),
    Wait(512.3),
    Audit(),
    Audit(1),
)


def test_samples_cover_every_registered_kind():
    assert {op.kind for op in SAMPLE_OPS} == set(OP_KINDS)


class TestOpWireForms:
    @pytest.mark.parametrize("op", SAMPLE_OPS, ids=lambda op: op.describe())
    def test_tuple_round_trip(self, op):
        assert op_from_tuple(op.to_tuple()) == op

    @pytest.mark.parametrize("op", SAMPLE_OPS, ids=lambda op: op.describe())
    def test_dict_round_trip(self, op):
        assert op_from_dict(op.to_dict()) == op

    @pytest.mark.parametrize("op", SAMPLE_OPS, ids=lambda op: op.describe())
    def test_pickle_round_trip(self, op):
        assert pickle.loads(pickle.dumps(op)) == op

    def test_trailing_none_slot_is_stripped(self):
        # Byte-compat with the pre-IR generator's tuples.
        assert Write(3).to_tuple() == ("write", 3)
        assert Write(3, slot=0).to_tuple() == ("write", 3, 0)
        assert Audit().to_tuple() == ("audit",)

    def test_unknown_kind_tuple_raises(self):
        with pytest.raises(WorkloadError, match="unknown op kind"):
            op_from_tuple(("teleport",))

    def test_overlong_tuple_raises(self):
        with pytest.raises(WorkloadError, match="at most"):
            op_from_tuple(("rotate", 90))

    def test_empty_tuple_raises(self):
        with pytest.raises(WorkloadError, match="empty"):
            op_from_tuple(())

    def test_unknown_dict_field_raises(self):
        with pytest.raises(WorkloadError, match="unknown field"):
            op_from_dict({"op": "wait", "gap_ms": 1.0, "speed": 2})

    def test_dict_without_op_key_raises(self):
        with pytest.raises(WorkloadError, match="'op' key"):
            op_from_dict({"gap_ms": 1.0})

    def test_config_change_kinds(self):
        flagged = {op.kind for op in SAMPLE_OPS if op.is_config_change}
        assert flagged == CONFIG_CHANGE_KINDS


class TestWorkload:
    def test_rejects_non_op_entries(self):
        with pytest.raises(WorkloadError, match="Op instances"):
            Workload((("rotate",),))

    def test_tuples_round_trip(self):
        workload = Workload(SAMPLE_OPS)
        assert Workload.from_tuples(workload.to_tuples()) == workload

    def test_pickle_round_trip(self):
        workload = Workload(SAMPLE_OPS)
        assert pickle.loads(pickle.dumps(workload)) == workload

    def test_summaries(self):
        workload = Workload((Rotate(), Wait(100.0), Write(0), Wait(50.5)))
        assert len(workload) == 4
        assert workload.op_count() == 2          # waits excluded
        assert workload.config_changes() == 1
        assert workload.think_time_ms() == 150.5

    def test_describe_one_line_per_op(self):
        text = Workload((Rotate(), Night(True), Wait(100.0))).describe()
        assert text.splitlines() == ["rotate", "night on", "wait 100.0"]


class TestCodec:
    def test_json_round_trip_every_kind(self):
        workload = Workload(SAMPLE_OPS)
        assert workload_from_json(workload_to_json(workload)) == workload

    def test_canonical_json_is_stable(self):
        workload = Workload(SAMPLE_OPS)
        assert workload_to_json(workload) == workload_to_json(
            Workload(SAMPLE_OPS)
        )

    def test_envelope_fields(self):
        data = workload_to_dict(Workload((Rotate(),)))
        assert data["format"] == WORKLOAD_FORMAT
        assert data["version"] == WORKLOAD_FORMAT_VERSION

    def test_wrong_format_raises(self):
        with pytest.raises(WorkloadError, match="not a workload"):
            workload_from_dict({"format": "repro.fleet", "version": 1,
                                "ops": []})

    def test_wrong_version_raises(self):
        with pytest.raises(WorkloadError, match="version"):
            workload_from_dict({"format": WORKLOAD_FORMAT, "version": 99,
                                "ops": []})

    def test_missing_ops_raises(self):
        with pytest.raises(WorkloadError, match="'ops' list"):
            workload_from_dict({"format": WORKLOAD_FORMAT,
                                "version": WORKLOAD_FORMAT_VERSION})

    def test_invalid_json_raises(self):
        with pytest.raises(WorkloadError, match="not valid JSON"):
            workload_from_json("{nope")

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "w.json"
        workload = Workload(SAMPLE_OPS)
        save_workload(path, workload)
        assert load_workload(path) == workload

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(WorkloadError, match="cannot read"):
            load_workload(tmp_path / "nope.json")
