"""Time-varying workloads: phase plans, correlated events, purity."""

import pytest

from repro.errors import WorkloadError
from repro.workload.generate import PopulationSpec
from repro.workload.ir import Kill, Locale, Rotate
from repro.workload.library import (
    PHASE_PLANS,
    WORKLOADS,
    phase_plan_named,
    workload_named,
)
from repro.workload.phases import (
    EVENT_KILL_CASCADE,
    EVENT_UPDATE_WAVE,
    FleetEvent,
    Phase,
    PhasePlan,
    phased_workload,
)

CALM = PopulationSpec(min_ops=2, max_ops=4, min_gap_ms=100.0,
                      max_gap_ms=400.0)


def plan(events=()):
    return PhasePlan("test", (Phase("a", CALM), Phase("b", CALM)),
                     tuple(events))


class TestValidation:
    def test_empty_plan_raises(self):
        with pytest.raises(WorkloadError, match="non-empty"):
            PhasePlan("p", ())

    def test_unnamed_phase_raises(self):
        with pytest.raises(WorkloadError, match="name"):
            Phase("", CALM)

    def test_phase_needs_a_population(self):
        with pytest.raises(WorkloadError, match="PopulationSpec"):
            Phase("a", {"min_ops": 2})

    def test_unknown_event_kind_gets_a_hint(self):
        with pytest.raises(WorkloadError, match="did you mean"):
            FleetEvent("update-waves", phase=0)

    def test_event_rate_bounds(self):
        with pytest.raises(WorkloadError, match="rate"):
            FleetEvent(EVENT_UPDATE_WAVE, phase=0, rate=0.0)
        with pytest.raises(WorkloadError, match="rate"):
            FleetEvent(EVENT_UPDATE_WAVE, phase=0, rate=1.5)

    def test_event_past_the_last_phase_raises(self):
        with pytest.raises(WorkloadError, match="only 2 phase"):
            plan([FleetEvent(EVENT_UPDATE_WAVE, phase=2)])


class TestPhasedWorkload:
    def test_pure_in_plan_seed_member(self):
        p = plan([FleetEvent(EVENT_KILL_CASCADE, phase=0, rate=0.5)])
        assert phased_workload(p, 0x5EED, 3) == phased_workload(p, 0x5EED, 3)

    def test_members_differ(self):
        p = plan()
        sessions = {phased_workload(p, 0x5EED, m) for m in range(10)}
        assert len(sessions) > 1

    def test_update_wave_at_full_rate_hits_every_member(self):
        p = plan([FleetEvent(EVENT_UPDATE_WAVE, phase=0, rate=1.0)])
        for member in range(10):
            ops = phased_workload(p, 0x5EED, member).ops
            assert any(isinstance(op, Locale) for op in ops)

    def test_kill_cascade_at_partial_rate_hits_a_strict_subset(self):
        base = plan()
        p = plan([FleetEvent(EVENT_KILL_CASCADE, phase=0, rate=0.5)])
        hit = sum(
            len(phased_workload(p, 0x5EED, m)) > len(
                phased_workload(base, 0x5EED, m))
            for m in range(40)
        )
        assert 0 < hit < 40

    def test_event_rate_change_never_reshuffles_other_events(self):
        # The fixed-draw discipline: each event costs the same number of
        # RNG draws whether or not the member joins, so re-rating event
        # #0 cannot change who participates in event #1.
        def cascade_members(first_rate):
            p = plan([
                FleetEvent(EVENT_UPDATE_WAVE, phase=0, rate=first_rate),
                FleetEvent(EVENT_KILL_CASCADE, phase=1, rate=0.5),
            ])
            return {
                m for m in range(40)
                if any(isinstance(op, Kill)
                       for op in phased_workload(p, 0x5EED, m))
            }

        assert cascade_members(0.1) == cascade_members(0.9)

    def test_every_session_ends_config_changed(self):
        # The rotate fallback from the stationary generator carries over.
        p = PhasePlan("idle-only", (
            Phase("a", PopulationSpec(min_ops=0, max_ops=0)),
        ))
        ops = phased_workload(p, 0x5EED, 0).ops
        assert any(isinstance(op, Rotate) for op in ops)


class TestLibrary:
    def test_registries_are_disjoint(self):
        assert not set(WORKLOADS) & set(PHASE_PLANS)

    def test_named_lookups(self):
        for name in WORKLOADS:
            workload_named(name)
        for name in PHASE_PLANS:
            assert phase_plan_named(name).name == name

    def test_unknown_name_gets_a_hint(self):
        with pytest.raises(WorkloadError, match="did you mean 'storm'"):
            workload_named("strom")
        with pytest.raises(WorkloadError, match="did you mean"):
            phase_plan_named("rotation-strom")

    def test_plan_describe_lists_phases_and_events(self):
        text = PHASE_PLANS["update-wave"].describe()
        assert "phase 0" in text
        assert "event update-wave" in text
