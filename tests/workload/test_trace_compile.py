"""Trace -> workload compilation (the amplification direction)."""

import pytest

from repro.engine.batch import POLICIES
from repro.errors import WorkloadError
from repro.fleet.population import fleet_corpus
from repro.oracle.session import play_session
from repro.system import AndroidSystem
from repro.trace import replay
from repro.trace.tracer import TraceSession
from repro.workload.generate import LOCALES, device_workload
from repro.workload.ir import Kill, Locale, Night, Resize, Rotate, Wait
from repro.workload.library import workload_named
from repro.workload.trace_compile import TRAILING_SETTLE_MS, from_trace


def config_span(start_ms, change):
    return {"name": "update-configuration", "category": "atms",
            "start_ms": start_ms, "args": {"change": change}}


def kill_span(start_ms):
    return {"name": "process-kill", "category": "process",
            "start_ms": start_ms, "args": {}}


class TestFromTraceSynthetic:
    def test_empty_trace_is_an_empty_workload(self):
        assert len(from_trace([])) == 0

    def test_each_dimension_maps_to_its_op(self):
        workload = from_trace([
            config_span(100.0, "orientation"),
            config_span(300.0, "screenSize"),
            config_span(500.0, "locale"),
            config_span(700.0, "uiMode"),
            kill_span(900.0),
        ])
        kinds = [type(op) for op in workload.ops if not isinstance(op, Wait)]
        assert kinds == [Rotate, Resize, Locale, Night, Kill]

    def test_gaps_preserve_the_recorded_cadence(self):
        workload = from_trace([
            config_span(100.0, "orientation"),
            config_span(350.5, "orientation"),
        ])
        waits = [op.gap_ms for op in workload.ops if isinstance(op, Wait)]
        assert waits == [250.5, TRAILING_SETTLE_MS]

    def test_orientation_wins_over_secondary_dimensions(self):
        workload = from_trace([
            config_span(100.0, "orientation,screenSize,locale"),
        ])
        assert isinstance(workload.ops[0], Rotate)

    def test_locales_cycle_through_the_standard_set(self):
        workload = from_trace([
            config_span(100.0 * (i + 1), "locale") for i in range(3)
        ])
        chosen = [op.locale for op in workload.ops
                  if isinstance(op, Locale)]
        assert chosen == [LOCALES[1], LOCALES[2], LOCALES[3]]

    def test_keyboard_only_changes_are_skipped(self):
        assert len(from_trace([config_span(100.0, "keyboard")])) == 0

    def test_unsorted_spans_are_ordered_by_time(self):
        workload = from_trace([
            kill_span(500.0),
            config_span(100.0, "orientation"),
        ])
        assert isinstance(workload.ops[0], Rotate)

    def test_malformed_record_raises(self):
        with pytest.raises(WorkloadError, match="malformed span"):
            from_trace([{"category": "atms"}])
        with pytest.raises(WorkloadError, match="Span objects or dicts"):
            from_trace([("atms", 0.0)])


class TestFromTraceRecorded:
    def test_recorded_demo_session_compiles_and_replays(self):
        """Record a real traced session, compile it, replay the result."""
        app = fleet_corpus()[0]
        population = workload_named("config-churn")
        source = device_workload(population, 0x5EED, 0)
        with TraceSession() as session:
            system = AndroidSystem(policy=POLICIES["rchdroid"](), seed=7)
            system.launch(app)
            system.run_for(400.0)
            play_session(system, app, source)
        spans = []
        for tracer in session.tracers:
            spans.extend(replay.snapshot(tracer))

        recorded = from_trace(spans)
        # Every recorded config change made it back into the IR.
        assert recorded.config_changes() == sum(
            1 for s in spans
            if s.get("category") == "atms"
            and s.get("name") == "update-configuration"
            and not set(str(s.get("args", {}).get("change", "")
                            ).split(",")) <= {"keyboard", "fontScale", ""}
        )
        assert recorded.config_changes() > 0

        # The compiled workload replays cleanly under another policy.
        replay_system = AndroidSystem(policy=POLICIES["android10"](), seed=7)
        replay_system.launch(app)
        replay_system.run_for(400.0)
        log = play_session(replay_system, app, recorded)
        assert log.ops_played == recorded.op_count()
